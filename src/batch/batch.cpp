#include "batch/batch.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <unordered_set>
#include <utility>

#include "batch/isolate.hpp"
#include "blocks/semantics.hpp"
#include "codegen/autotune.hpp"
#include "model/flatten.hpp"
#include "model/validate.hpp"
#include "slx/slx.hpp"
#include "support/cancel.hpp"
#include "support/faultinject.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "support/version.hpp"
#include "zip/zip.hpp"

namespace frodo::batch {

namespace {

std::string to_lower(std::string_view text) {
  std::string lower;
  for (char c : text)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lower;
}

long long elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

bool has_model_extension(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = to_lower(path.substr(dot));
  return ext == ".slx" || ext == ".slxz" || ext == ".xml";
}

}  // namespace

bool check_model(const model::Model& m, diag::Engine& engine, bool strict,
                 CheckedModel* out) {
  // The analysis phases run again inside the generator; the pass label
  // keeps the two runs distinguishable in the exported trace.
  trace::PassScope pass("validate");
  model::ValidateOptions vopts;
  vopts.oracle = &blocks::validation_oracle();
  vopts.strict = strict;
  {
    trace::Scope span("validate");
    if (!model::validate(m, engine, vopts)) return false;
  }

  CheckedModel local;
  CheckedModel& cm = out != nullptr ? *out : local;
  {
    auto flat = model::flatten(m);
    if (!flat.is_ok()) {
      engine.error_from(flat.status(), diag::codes::kInternal);
      return false;
    }
    cm.flat = std::move(flat).value();
  }
  {
    auto graph = graph::DataflowGraph::build(cm.flat);
    if (!graph.is_ok()) {
      engine.error_from(graph.status(), diag::codes::kInternal);
      return false;
    }
    cm.graph = std::move(graph).value();
  }
  blocks::AnalyzeOptions aopts;
  aopts.engine = &engine;
  aopts.degrade_unknown = !strict;
  {
    auto analysis = blocks::analyze(cm.graph, aopts);
    if (!analysis.is_ok()) {
      engine.error_from(analysis.status(), diag::codes::kAnalysisShape);
      return false;
    }
    cm.analysis = std::move(analysis).value();
  }
  {
    auto sig = blocks::io_signature(cm.analysis);
    if (!sig.is_ok()) {
      engine.error_from(sig.status(), diag::codes::kModelPortNumbering);
      return false;
    }
    cm.sig = std::move(sig).value();
  }
  return true;
}

unsigned optimize_flag_mask(const codegen::OptimizeOptions& optimize) {
  unsigned mask = 0;
  if (optimize.fuse) mask |= 1u;
  if (optimize.shrink_buffers) mask |= 2u;
  if (optimize.alias_truncation) mask |= 4u;
  return mask;
}

Result<range::RangeAnalysis> ranges_with_cache(
    const model::Model& original, const blocks::Analysis& analysis,
    const AnalysisCache* cache, unsigned flag_mask,
    const std::string& generator_family, diag::Engine* engine,
    support::ThreadPool* pool, bool* cache_hit) {
  // These ranges are handed to the generator as precomputed_ranges — they
  // replace the generation pass's own Algorithm 1 run, so label them as
  // generation-pass work.
  trace::PassScope pass("generate");
  if (cache_hit != nullptr) *cache_hit = false;
  if (cache == nullptr)
    return range::determine_ranges(analysis, engine, pool);

  std::string key;
  {
    trace::Scope span("cache_key");
    key = cache_key(original, flag_mask, generator_family);
  }
  // Cache faults are never fatal: a failed read is a miss, a failed write
  // is an unstored entry, and either way the compile proceeds — with a
  // coded warning so a run that silently lost its cache is explicable.
  if (support::faultinject::at("cache.read")) {
    if (engine != nullptr)
      engine->warning(diag::codes::kWCacheDegraded,
                      "analysis cache read failed (injected fault); "
                      "treating as a miss");
  } else {
    range::RangeAnalysis cached;
    trace::Scope span("cache_lookup");
    if (cache->lookup(key, &cached) &&
        ranges_match_analysis(cached, analysis)) {
      trace::count("analysis_cache_hits");
      if (cache_hit != nullptr) *cache_hit = true;
      return cached;
    }
  }
  trace::count("analysis_cache_misses");

  const int warnings_before = engine != nullptr ? engine->warning_count() : 0;
  auto ranges = range::determine_ranges(analysis, engine, pool);
  if (!ranges.is_ok()) return ranges;
  // A degraded analysis (new FRODO-W002 warnings) must re-report those
  // warnings on every compile; a cache hit would silently swallow them, so
  // such results are never stored.
  const int warnings_after = engine != nullptr ? engine->warning_count() : 0;
  if (warnings_after == warnings_before) {
    if (support::faultinject::at("cache.write")) {
      if (engine != nullptr)
        engine->warning(diag::codes::kWCacheDegraded,
                        "analysis cache write failed (injected fault); "
                        "entry not stored");
    } else {
      trace::Scope span("cache_store");
      cache->store(key, ranges.value());
      trace::count("analysis_cache_stores");
    }
  }
  return ranges;
}

TunedSetup resolve_tuned_decisions(const model::Model& original,
                                   const CheckedModel& checked,
                                   const AnalysisCache* cache,
                                   const BatchOptions& options,
                                   diag::Engine* engine) {
  TunedSetup setup;
  const std::string family = to_lower(options.generator);
  const std::string key =
      cache_key(original, optimize_flag_mask(options.optimize), family);

  // Cache faults are never fatal here either (same FRODO-W006 story as the
  // ranges entries): a failed read is a miss — autotune or the static
  // fallback takes over — and a failed write just loses the persisted entry.
  if (cache != nullptr && !support::faultinject::at("cache.read")) {
    trace::Scope span("tuned_cache_lookup");
    if (cache->lookup_tuned(key, &setup.vector) &&
        setup.vector.masks.size() ==
            static_cast<std::size_t>(checked.graph.block_count())) {
      trace::count("tuned_cache_hits");
      setup.source = "cache";
      setup.resolved = true;
      return setup;
    }
  }
  trace::count("tuned_cache_misses");

  if (options.autotune) {
    codegen::autotune::AutotuneOptions tune;
    tune.reps = options.autotune_reps;
    tune.rounds = options.autotune_rounds;
    tune.optimize = options.optimize;
    tune.optimize.tuned = nullptr;
    tune.engine = engine;
    tune.workdir =
        (options.cache_dir.empty() ? options.outdir : options.cache_dir) +
        "/autotune/" + original.name();
    auto tuned = codegen::autotune::autotune_model(original, tune);
    if (tuned.is_ok()) {
      setup.vector = std::move(tuned).value().decisions;
      setup.source = "autotune";
      setup.resolved = true;
      if (cache != nullptr) {
        if (support::faultinject::at("cache.write")) {
          if (engine != nullptr)
            engine->warning(diag::codes::kWCacheDegraded,
                            "analysis cache write failed (injected fault); "
                            "tuned entry not stored");
        } else {
          trace::Scope span("tuned_cache_store");
          cache->store_tuned(key, setup.vector);
          trace::count("tuned_cache_stores");
        }
      }
      return setup;
    }
    if (engine != nullptr)
      engine->warning(diag::codes::kWTunedFallback,
                      "autotune failed (" + tuned.status().message() +
                          "); falling back to the static cost model",
                      original.name());
    return setup;
  }

  if (engine != nullptr)
    engine->warning(
        diag::codes::kWTunedFallback,
        "no tuned decisions cached for this model (run with --autotune to "
        "measure them); falling back to the static cost model",
        original.name());
  return setup;
}

Result<codegen::Report> model_report(
    const CheckedModel& checked, const std::string& generator_name,
    const codegen::OptimizeOptions& optimize, const std::string& model_name,
    const range::RangeAnalysis* precomputed) {
  trace::PassScope pass("report");
  const std::string lower = to_lower(generator_name);
  const bool frodo_style = lower.rfind("frodo", 0) == 0;

  range::RangeAnalysis ranges;
  if (frodo_style) {
    if (precomputed != nullptr) {
      ranges = *precomputed;
    } else {
      // Degradation warnings were already reported by the main pipeline run;
      // recomputing with a null engine keeps them from appearing twice.
      auto r = range::determine_ranges(checked.analysis, nullptr);
      if (!r.is_ok()) return r.status();
      ranges = std::move(r).value();
    }
    if (lower == "frodo-loose")
      ranges = range::loosen(checked.analysis, ranges, nullptr);
  } else {
    ranges = range::full_ranges(checked.analysis);
  }
  const codegen::OptimizePlan plan = codegen::plan_optimizations(
      checked.analysis, ranges,
      (frodo_style && lower != "frodo-noopt")
          ? optimize
          : codegen::OptimizeOptions::none());
  return codegen::build_report(checked.analysis, ranges, plan, model_name,
                               generator_name);
}

Result<std::vector<std::string>> expand_input(const std::string& arg) {
  using R = Result<std::vector<std::string>>;
  namespace fs = std::filesystem;
  std::error_code ec;

  if (fs::is_directory(arg, ec)) {
    std::vector<std::string> paths;
    for (const fs::directory_entry& entry : fs::directory_iterator(arg, ec)) {
      if (ec) break;
      if (!entry.is_regular_file(ec)) continue;
      const std::string path = entry.path().string();
      if (has_model_extension(path)) paths.push_back(path);
    }
    if (paths.empty())
      return R::error(diag::codes::kBatchInput,
                      "no model files (*.slx, *.slxz, *.xml) in directory '" +
                          arg + "'");
    std::sort(paths.begin(), paths.end());
    return paths;
  }

  if (has_model_extension(arg)) return std::vector<std::string>{arg};

  // A manifest: one model path per line, '#' comments, blank lines ignored,
  // relative paths resolved against the manifest's directory.
  std::ifstream in(arg, std::ios::binary);
  if (!in)
    return R::error(diag::codes::kBatchInput,
                    "cannot read batch manifest '" + arg + "'");
  const std::string base = fs::path(arg).parent_path().string();
  std::vector<std::string> paths;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string entry{trim(line)};
    if (entry.empty() || entry[0] == '#') continue;
    const bool absolute = fs::path(entry).is_absolute();
    paths.push_back(absolute || base.empty() ? entry : base + "/" + entry);
  }
  if (paths.empty())
    return R::error(diag::codes::kBatchInput,
                    "batch manifest '" + arg + "' names no models");
  return paths;
}

namespace {

// Classifies a failed Status by its root diagnostic code, reports it, and
// fills the outcome's failure record.
int fail_model(ModelOutcome* outcome, const Status& status,
               const char* fallback_code) {
  outcome->engine.error_from(status, fallback_code);
  const std::string& code = status.code();
  if (code == diag::codes::kCancelled)
    outcome->failure_kind = "cancelled";
  else if (code == diag::codes::kDeadline)
    outcome->failure_kind = "timeout";
  else
    outcome->failure_kind = "error";
  return 1;
}

bool is_stop_code(const Status& status) {
  return status.code() == diag::codes::kCancelled ||
         status.code() == diag::codes::kDeadline;
}

}  // namespace

// The per-model pipeline, reporting into outcome->engine.  Runs on a pool
// worker (or an isolated child) with outcome->tracer installed as the
// thread's trace sink.
int compile_one_model(const std::string& path, const BatchOptions& options,
                      const AnalysisCache* cache, support::ThreadPool* pool,
                      ModelOutcome* outcome) {
  auto model = slx::load(path);
  if (!model.is_ok()) {
    const std::string code = model.status().code().empty()
                                 ? std::string(diag::codes::kPkgUnreadable)
                                 : model.status().code();
    outcome->engine.error(
        code, "cannot load '" + path + "': " + model.message(), path);
    outcome->failure_kind = "error";
    return 1;
  }
  outcome->model_name = model.value().name();

  auto generator = codegen::make_generator(options.generator,
                                           options.simd_width,
                                           &options.optimize);
  if (!generator.is_ok()) {
    // compile_batch validated the name up front; reaching here is internal.
    outcome->engine.error(diag::codes::kInternal, generator.message());
    outcome->failure_kind = "infra";
    return 2;
  }

  CheckedModel checked;
  if (!check_model(model.value(), outcome->engine, options.strict,
                   &checked)) {
    outcome->failure_kind = "error";
    return 1;
  }

  codegen::GenerateOptions gen_options;
  gen_options.engine = options.strict ? nullptr : &outcome->engine;
  gen_options.profile_hooks = options.profile_hooks;
  gen_options.pool = pool;

  // frodo-family generators run Algorithm 1 — front it with the cache and
  // hand the result to both the generator and the report.
  range::RangeAnalysis ranges;
  const range::RangeAnalysis* precomputed = nullptr;
  const std::string family = to_lower(options.generator);
  if (family.rfind("frodo", 0) == 0) {
    outcome->cache_checked = cache != nullptr;
    auto r = ranges_with_cache(model.value(), checked.analysis, cache,
                               optimize_flag_mask(options.optimize), family,
                               gen_options.engine, pool, &outcome->cache_hit);
    if (!r.is_ok())
      return fail_model(outcome, r.status(), diag::codes::kAnalysisShape);
    ranges = std::move(r).value();
    precomputed = &ranges;
    gen_options.precomputed_ranges = precomputed;
  }

  // Optimizer flags actually used — the degradation ladder below may mask
  // some off; the report then describes what really ran.
  codegen::OptimizeOptions effective = options.optimize;

  // Tuned-decision replay: with --cost-model tuned the per-block grant
  // masks come from the analysis cache or a fresh autotune run instead of
  // static scoring.  Every failure path degrades to the static model with
  // FRODO-W007 — tuning is a performance layer, never a correctness one.
  TunedSetup tuned;  // must outlive generate()
  if (family.rfind("frodo", 0) == 0 &&
      effective.cost_model == codegen::cost::CostModelMode::kTuned) {
    tuned = resolve_tuned_decisions(model.value(), checked, cache, options,
                                    gen_options.engine);
    outcome->tuned_source = tuned.source;
    if (tuned.resolved) effective.tuned = &tuned.vector;
    // Rebind the generator to the resolved options (tuned vector or the
    // static fallback the planner will downgrade to).
    generator = codegen::make_generator(options.generator,
                                        options.simd_width, &effective);
    if (!generator.is_ok()) {
      outcome->engine.error(diag::codes::kInternal, generator.message());
      outcome->failure_kind = "infra";
      return 2;
    }
  }

  auto code = generator.value()->generate(model.value(), gen_options);
  if (!code.is_ok() &&
      code.status().code() == diag::codes::kOptimizerPass &&
      family.rfind("frodo", 0) == 0 && effective.any()) {
    // Degradation ladder: an *optimizer* failure (FRODO-E404 — only the
    // optimizer passes report it) is retried with passes masked off one at
    // a time (fuse, then shrink, then alias — i.e. down to noopt).  Other
    // generate failures (emission, planning) fail the model directly:
    // masking an optimizer flag cannot fix what the optimizer did not
    // break.  The ranges are flag-independent, so the precomputed analysis
    // is reused; losing a pass loses performance, never correctness.
    const Status original_failure = code.status();
    std::vector<std::string> dropped;
    struct LadderStep {
      bool codegen::OptimizeOptions::*flag;
      const char* name;
    };
    const LadderStep ladder[] = {
        {&codegen::OptimizeOptions::fuse, "fuse"},
        {&codegen::OptimizeOptions::shrink_buffers, "shrink-buffers"},
        {&codegen::OptimizeOptions::alias_truncation, "alias-truncation"},
    };
    for (const LadderStep& step : ladder) {
      if (!(effective.*(step.flag))) continue;
      effective.*(step.flag) = false;
      dropped.push_back(step.name);
      auto degraded = codegen::make_generator(options.generator,
                                              options.simd_width, &effective);
      if (!degraded.is_ok()) break;
      trace::count("optimizer_degraded_retries");
      auto retry = degraded.value()->generate(model.value(), gen_options);
      if (retry.is_ok() || is_stop_code(retry.status())) {
        code = std::move(retry);
        break;
      }
    }
    if (code.is_ok()) {
      outcome->degraded_mask = optimize_flag_mask(options.optimize) &
                               ~optimize_flag_mask(effective);
      std::string disabled = join(dropped, ", ");
      outcome->engine.warning(
          diag::codes::kWOptimizerDegraded,
          "optimizer failed (" + original_failure.message() +
              "); compiled with " + disabled + " disabled",
          outcome->model_name);
      trace::count("models_degraded");
    }
  }
  if (!code.is_ok())
    return fail_model(outcome, code.status(), diag::codes::kCodegenEmit);
  outcome->code = std::move(code).value();

  if (!options.report_format.empty()) {
    auto report = model_report(checked, options.generator, effective,
                               outcome->model_name, precomputed);
    if (!report.is_ok())
      return fail_model(outcome, report.status(),
                        diag::codes::kAnalysisShape);
    codegen::Report rendered = std::move(report).value();
    if (outcome->cache_checked)
      rendered.analysis_cache = outcome->cache_hit ? "hit" : "miss";
    outcome->report = options.report_format == "json"
                          ? codegen::render_report_json(rendered)
                          : codegen::render_report_text(rendered);
  }
  return 0;
}

BatchResult compile_batch(const std::vector<std::string>& inputs,
                          const BatchOptions& options) {
  const auto batch_start = std::chrono::steady_clock::now();
  BatchResult result;

  // Reject a bad generator name once, up front, instead of N times.
  {
    auto probe = codegen::make_generator(options.generator,
                                         options.simd_width,
                                         &options.optimize);
    if (!probe.is_ok()) {
      result.exit_code = 2;
      result.usage_error = probe.message();
      return result;
    }
  }

  const AnalysisCache cache(options.cache_dir);
  const AnalysisCache* cache_ptr =
      options.cache_dir.empty() ? nullptr : &cache;

  result.models.resize(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    result.models[i].input_path = inputs[i];
    result.models[i].engine = diag::Engine(options.max_errors);
  }

  if (options.isolate == "process") {
    // Fork discipline: no thread pool exists in the parent in this mode —
    // children must be forked from a single-threaded process (see
    // batch/isolate.hpp).  Concurrency comes from running up to `jobs`
    // children at once.
    compile_batch_isolated(inputs, options, cache_ptr, &result);
  } else {
    // jobs includes the calling thread; the same pool also runs the
    // intra-model parallel passes (nested parallel_for is deadlock-free —
    // see support/thread_pool.hpp).
    const int jobs = options.jobs < 1 ? 1 : options.jobs;
    support::ThreadPool pool(jobs - 1);
    support::ThreadPool* pool_ptr = pool.worker_count() > 0 ? &pool : nullptr;

    pool.parallel_for(inputs.size(), [&](std::size_t i) {
      ModelOutcome& outcome = result.models[i];
      outcome.tracer.set_metadata("model", outcome.input_path);
      outcome.tracer.set_metadata("generator", options.generator);
      // RAII installation: a compile that unwinds with an exception must
      // restore this worker thread's previous tracer, or the next model
      // compiled here would interleave its spans into the wrong tracer.
      // (The manual install/restore pair this replaces leaked on every
      // non-bad_alloc throw — a latent cross-request state leak once a
      // long-lived daemon reuses the thread.)
      trace::InstallScope trace_scope(&outcome.tracer);
      // Per-model deadline: cooperative polls in the pass loops unwind with
      // FRODO-E911.  The token is installed on this worker and re-installed
      // by the intra-model fan-out points.
      support::CancelToken token;
      if (options.timeout_per_model_ms > 0)
        token.set_timeout_ms(options.timeout_per_model_ms);
      support::CancelScope cancel_scope(
          options.timeout_per_model_ms > 0 ? &token : nullptr);
      support::faultinject::ScopedContext fault_context(outcome.input_path);
      const auto start = std::chrono::steady_clock::now();
      try {
        outcome.exit_code = compile_one_model(outcome.input_path, options,
                                              cache_ptr, pool_ptr, &outcome);
      } catch (const std::bad_alloc&) {
        // Contain an in-process allocation failure to this model (real
        // memory caps need --isolate=process; this keeps the batch alive).
        outcome.engine.error(diag::codes::kChildOom,
                             "out of memory while compiling",
                             outcome.input_path);
        outcome.failure_kind = "oom";
        outcome.exit_code = 1;
      }
      outcome.compile_us = elapsed_us(start);
    });
  }

  // Serial write phase, strictly in input order: deterministic "wrote" lines
  // and first-entry-wins on output-prefix clashes regardless of --jobs.
  if (options.write_outputs) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options.outdir, ec);
    std::unordered_set<std::string> used_prefixes;
    for (ModelOutcome& outcome : result.models) {
      if (outcome.exit_code != 0) continue;
      if (!used_prefixes.insert(outcome.code.prefix).second) {
        outcome.engine.error(
            diag::codes::kBatchOutputClash,
            "output prefix '" + outcome.code.prefix +
                "' already written by an earlier batch entry; not writing",
            outcome.input_path);
        outcome.exit_code = 1;
        continue;
      }
      const std::string base = options.outdir + "/" + outcome.code.prefix;
      const std::pair<std::string, std::string> parts[] = {
          {base + ".c", outcome.code.source},
          {base + ".h", outcome.code.header}};
      for (const auto& [path, text] : parts) {
        auto status =
            support::faultinject::check("output.write", diag::codes::kIoWrite);
        if (status.is_ok()) status = zip::write_file(path, text);
        if (!status.is_ok()) {
          outcome.engine.error(diag::codes::kIoWrite, status.message(), path);
          outcome.exit_code = 2;
          outcome.failure_kind = "infra";
          break;
        }
        outcome.written.push_back(path);
      }
    }
  }

  for (const ModelOutcome& outcome : result.models) {
    result.exit_code = std::max(result.exit_code, outcome.exit_code);
    if (outcome.cache_checked) {
      if (outcome.cache_hit)
        ++result.cache_hits;
      else
        ++result.cache_misses;
    }
    if (outcome.exit_code != 0) ++result.failed_models;
    if (outcome.degraded_mask != 0) ++result.degraded_models;
    result.retries_used += outcome.attempts - 1;
    if (outcome.failure_kind == "timeout") ++result.timeouts;
    else if (outcome.failure_kind == "crash") ++result.crashes;
    else if (outcome.failure_kind == "oom") ++result.ooms;
  }
  result.wall_us = elapsed_us(batch_start);
  return result;
}

std::string render_batch_report(const BatchResult& result,
                                const BatchOptions& options) {
  long long ok = 0;
  for (const ModelOutcome& outcome : result.models)
    if (outcome.exit_code == 0) ++ok;
  const long long failed =
      static_cast<long long>(result.models.size()) - ok;
  const bool cache_enabled = !options.cache_dir.empty();

  if (options.report_format == "json") {
    auto q = [](std::string_view s) {
      return "\"" + diag::json_escape(s) + "\"";
    };
    // All wall-clock numbers live on the single "timing" line so tooling can
    // compare two runs modulo timing by dropping that one line.
    std::string out = "{\n";
    out += "\"batch\": {\"models\": " + std::to_string(result.models.size()) +
           ", \"ok\": " + std::to_string(ok) +
           ", \"failed\": " + std::to_string(failed) +
           ", \"jobs\": " + std::to_string(options.jobs) +
           ", \"generator\": " + q(options.generator) +
           ", \"cache\": {\"enabled\": " +
           (cache_enabled ? "true" : "false") +
           ", \"hits\": " + std::to_string(result.cache_hits) +
           ", \"misses\": " + std::to_string(result.cache_misses) + "}" +
           ", \"resilience\": {\"degraded\": " +
           std::to_string(result.degraded_models) +
           ", \"retries\": " + std::to_string(result.retries_used) +
           ", \"timeouts\": " + std::to_string(result.timeouts) +
           ", \"crashes\": " + std::to_string(result.crashes) +
           ", \"ooms\": " + std::to_string(result.ooms) + "}},\n";
    {
      std::string timing =
          "\"timing\": {\"wall_us\": " + std::to_string(result.wall_us);
      const double secs =
          static_cast<double>(result.wall_us) / 1'000'000.0;
      const double rate = secs > 0.0
                              ? static_cast<double>(result.models.size()) /
                                    secs
                              : 0.0;
      char rate_text[32];
      std::snprintf(rate_text, sizeof rate_text, "%.2f", rate);
      timing += std::string(", \"models_per_sec\": ") + rate_text;
      timing += ", \"per_model_us\": [";
      for (std::size_t i = 0; i < result.models.size(); ++i) {
        if (i > 0) timing += ", ";
        timing += std::to_string(result.models[i].compile_us);
      }
      timing += "]},\n";
      out += timing;
    }
    out += "\"models\": [\n";
    for (std::size_t i = 0; i < result.models.size(); ++i) {
      const ModelOutcome& m = result.models[i];
      out += "{\"path\": " + q(m.input_path) + ", \"name\": " +
             q(m.model_name) +
             ", \"exit_code\": " + std::to_string(m.exit_code) +
             ", \"cache\": " +
             q(!m.cache_checked ? "off" : m.cache_hit ? "hit" : "miss") +
             ", \"errors\": " + std::to_string(m.engine.error_count()) +
             ", \"warnings\": " + std::to_string(m.engine.warning_count()) +
             ", \"failure\": " + q(m.failure_kind) +
             ", \"attempts\": " + std::to_string(m.attempts) +
             ", \"degraded_mask\": " + std::to_string(m.degraded_mask) +
             "}";
      out += i + 1 < result.models.size() ? ",\n" : "\n";
    }
    out += "]";
    // Per-model redundancy reports, as produced by `--report json` for a
    // single model, in batch order (null for failed entries).
    out += ",\n\"reports\": [\n";
    for (std::size_t i = 0; i < result.models.size(); ++i) {
      const ModelOutcome& m = result.models[i];
      if (m.report.empty()) {
        out += "null";
      } else {
        std::string doc = m.report;
        while (!doc.empty() && doc.back() == '\n') doc.pop_back();
        out += doc;
      }
      out += i + 1 < result.models.size() ? ",\n" : "\n";
    }
    out += "]\n}\n";
    return out;
  }

  // Text: per-model reports first (batch order), then the summary footer.
  std::string out;
  for (const ModelOutcome& m : result.models) {
    if (m.report.empty()) continue;
    out += "== " + m.input_path + " ==\n";
    out += m.report;
  }
  out += "batch: " + std::to_string(result.models.size()) + " models, " +
         std::to_string(ok) + " ok, " + std::to_string(failed) + " failed";
  if (cache_enabled)
    out += ", cache " + std::to_string(result.cache_hits) + " hits / " +
           std::to_string(result.cache_misses) + " misses";
  out += "\n";
  // Resilience footer only when something non-routine happened, so a clean
  // run's summary is unchanged.
  if (result.degraded_models > 0 || result.retries_used > 0 ||
      result.timeouts > 0 || result.crashes > 0 || result.ooms > 0) {
    out += "resilience: " + std::to_string(result.degraded_models) +
           " degraded, " + std::to_string(result.retries_used) +
           " retries, " + std::to_string(result.timeouts) + " timeouts, " +
           std::to_string(result.crashes) + " crashes, " +
           std::to_string(result.ooms) + " ooms\n";
  }
  return out;
}

// ---- Telemetry --------------------------------------------------------------

namespace {

std::string outcome_name(const ModelOutcome& m) {
  if (m.exit_code == 0) return "ok";
  return m.failure_kind.empty() ? "error" : m.failure_kind;
}

std::string cache_result_name(const ModelOutcome& m) {
  if (!m.cache_checked) return "off";
  return m.cache_hit ? "hit" : "miss";
}

// The optimizer flag bits of ModelOutcome::degraded_mask, named like the
// degradation ladder's W004 message and the CLI flags.
std::vector<std::string> degraded_pass_names(unsigned mask) {
  std::vector<std::string> names;
  if (mask & 1u) names.push_back("fuse");
  if (mask & 2u) names.push_back("shrink-buffers");
  if (mask & 4u) names.push_back("alias-truncation");
  return names;
}

// Top-level trace spans summed by name in first-touch order — the ledger's
// per-phase timing breakdown.  Duplicate names (validate-pass vs
// generation-pass analysis runs) accumulate into one row; nested spans are
// already inside their parent's time.
std::vector<std::pair<std::string, long long>> phase_timings(
    const trace::Tracer& tracer) {
  std::vector<std::pair<std::string, long long>> timings;
  for (const trace::Span& span : tracer.spans()) {
    if (span.depth != 0) continue;
    bool found = false;
    for (auto& [name, us] : timings) {
      if (name == span.name) {
        us += span.dur_us;
        found = true;
        break;
      }
    }
    if (!found) timings.emplace_back(span.name, span.dur_us);
  }
  return timings;
}

}  // namespace

metrics::CompileEvent outcome_event(const ModelOutcome& outcome,
                                    long long index,
                                    const std::string& generator) {
  metrics::CompileEvent e;
  e.index = index;
  e.input = outcome.input_path;
  e.model = outcome.model_name;
  e.generator = generator;
  e.outcome = outcome_name(outcome);
  e.exit_code = outcome.exit_code;
  e.cache = cache_result_name(outcome);
  e.tuned_source = outcome.tuned_source;
  const std::vector<std::string> dropped =
      degraded_pass_names(outcome.degraded_mask);
  e.degraded = dropped.empty() ? "none" : join(dropped, "+");
  e.attempts = outcome.attempts;
  e.errors = outcome.engine.error_count();
  e.warnings = outcome.engine.warning_count();
  e.timings_us.emplace_back("total", outcome.compile_us);
  for (const auto& [phase, us] : phase_timings(outcome.tracer))
    e.timings_us.emplace_back(phase, us);
  return e;
}

std::vector<metrics::CompileEvent> batch_events(const BatchResult& result,
                                                const BatchOptions& options) {
  std::vector<metrics::CompileEvent> events;
  events.reserve(result.models.size());
  for (std::size_t i = 0; i < result.models.size(); ++i)
    events.push_back(outcome_event(result.models[i],
                                   static_cast<long long>(i),
                                   options.generator));
  return events;
}

metrics::Rollups batch_rollups(const BatchResult& result) {
  metrics::Rollups r;
  r.models = static_cast<long long>(result.models.size());
  r.failed = result.failed_models;
  r.ok = r.models - r.failed;
  r.cache_hits = result.cache_hits;
  r.cache_misses = result.cache_misses;
  r.retries = result.retries_used;
  r.degraded = result.degraded_models;
  r.wall_us = result.wall_us;
  r.models_per_sec =
      result.wall_us > 0
          ? static_cast<double>(r.models) * 1e6 /
                static_cast<double>(result.wall_us)
          : 0.0;
  std::vector<long long> latencies;
  latencies.reserve(result.models.size());
  for (const ModelOutcome& m : result.models)
    latencies.push_back(m.compile_us);
  r.p50_us = metrics::percentile_us(latencies, 50.0);
  r.p95_us = metrics::percentile_us(latencies, 95.0);
  r.p99_us = metrics::percentile_us(latencies, 99.0);
  return r;
}

void record_batch_metrics(const BatchResult& result,
                          const BatchOptions& options,
                          metrics::Registry* registry) {
  if (registry == nullptr) return;
  metrics::Registry& reg = *registry;
  reg.set("frodo_build_info", {{"version", version_string()}}, 1.0);
  for (const ModelOutcome& m : result.models) {
    const metrics::Labels by_outcome{{"generator", options.generator},
                                     {"outcome", outcome_name(m)}};
    reg.add("frodo_compiles_total", by_outcome);
    reg.observe("frodo_compile_latency_seconds", by_outcome,
                static_cast<double>(m.compile_us) / 1e6);
    for (const auto& [phase, us] : phase_timings(m.tracer))
      reg.observe("frodo_compile_phase_seconds", {{"phase", phase}},
                  static_cast<double>(us) / 1e6);
    if (m.cache_checked)
      reg.add("frodo_cache_lookups_total",
              {{"result", m.cache_hit ? "hit" : "miss"}});
    if (const long long q = m.tracer.counter("cache_quarantined"); q > 0)
      reg.add("frodo_cache_lookups_total", {{"result", "quarantined"}},
              static_cast<double>(q));
    if (!m.tuned_source.empty())
      reg.add("frodo_tuned_decisions_total", {{"source", m.tuned_source}});
    if (m.attempts > 1)
      reg.add("frodo_retries_total", {},
              static_cast<double>(m.attempts - 1));
    for (const std::string& pass : degraded_pass_names(m.degraded_mask))
      reg.add("frodo_degraded_compiles_total", {{"pass", pass}});
  }
  const metrics::Rollups r = batch_rollups(result);
  reg.set("frodo_batch_models", {}, static_cast<double>(r.models));
  reg.set("frodo_batch_jobs", {},
          static_cast<double>(options.jobs < 1 ? 1 : options.jobs));
  reg.set("frodo_batch_wall_seconds", {},
          static_cast<double>(r.wall_us) / 1e6);
  reg.set("frodo_batch_models_per_sec", {}, r.models_per_sec);
  reg.set("frodo_compile_latency_quantile_seconds", {{"q", "0.5"}},
          static_cast<double>(r.p50_us) / 1e6);
  reg.set("frodo_compile_latency_quantile_seconds", {{"q", "0.95"}},
          static_cast<double>(r.p95_us) / 1e6);
  reg.set("frodo_compile_latency_quantile_seconds", {{"q", "0.99"}},
          static_cast<double>(r.p99_us) / 1e6);
}

}  // namespace frodo::batch
