// Batch compilation engine — many models, one process, N workers.
//
// `frodoc --batch` compiles a directory or manifest of model packages
// concurrently on a work-stealing pool (support/thread_pool.hpp).  The
// parallelism never leaks into the observable output:
//
//   * one pipeline per model, with diagnostics accumulated in a per-model
//     diag::Engine and spans/counters in a per-model (thread-installed)
//     trace::Tracer — workers never interleave output;
//   * results are merged and rendered strictly in manifest order, and output
//     files are written serially in that order, so a `--jobs 8` run is
//     byte-identical to `--jobs 1` (modulo timing fields);
//   * the same pool runs the intra-model parallel passes (Algorithm 1
//     component partitioning, snippet-emission units), which are themselves
//     deterministic by construction.
//
// The cache-aware Algorithm 1 front end (`ranges_with_cache`) and the
// checked-model pipeline (`check_model`) are shared with the single-model
// CLI path, so `frodoc model.slxz` and a one-entry batch agree exactly.
#pragma once

#include <string>
#include <vector>

#include "batch/cache.hpp"
#include "blocks/analysis.hpp"
#include "codegen/generator.hpp"
#include "codegen/optimize.hpp"
#include "codegen/report.hpp"
#include "graph/graph.hpp"
#include "model/model.hpp"
#include "support/diag.hpp"
#include "support/metrics/ledger.hpp"
#include "support/metrics/registry.hpp"
#include "support/status.hpp"
#include "support/trace.hpp"

namespace frodo::support {
class ThreadPool;
}  // namespace frodo::support

namespace frodo::batch {

// Internally self-referential (graph points into flat, analysis into
// graph): keep the instance where it was filled in, never move or copy it.
struct CheckedModel {
  model::Model flat;
  graph::DataflowGraph graph;
  blocks::Analysis analysis;
  blocks::IoSignature sig;
};

// Validator + analysis pipeline, reporting every problem into `engine`.
// Returns false when errors were reported.
bool check_model(const model::Model& m, diag::Engine& engine, bool strict,
                 CheckedModel* out);

// The optimizer flag bit mask that participates in the cache key.
unsigned optimize_flag_mask(const codegen::OptimizeOptions& optimize);

// Algorithm 1 behind the analysis cache.  On a hit the ranges come from the
// cache and no range_analysis pass runs (zero trace spans); on a miss they
// are computed (optionally partitioned across `pool`) and stored — unless
// the analysis degraded with warnings, which must be re-reported on every
// compile and therefore make the entry uncacheable.  `cache` may be null
// (cache disabled).  Counters: analysis_cache_{hit,miss,store}.
Result<range::RangeAnalysis> ranges_with_cache(
    const model::Model& original, const blocks::Analysis& analysis,
    const AnalysisCache* cache, unsigned flag_mask,
    const std::string& generator_family, diag::Engine* engine,
    support::ThreadPool* pool, bool* cache_hit);

// The redundancy-elimination report for a checked model, mirroring the
// ranges/plan the selected generator actually uses.  `precomputed` (e.g. the
// ranges the generate step already used, possibly from the cache) skips the
// recomputation of Algorithm 1; pass null to recompute.
Result<codegen::Report> model_report(
    const CheckedModel& checked, const std::string& generator_name,
    const codegen::OptimizeOptions& optimize, const std::string& model_name,
    const range::RangeAnalysis* precomputed);

struct BatchOptions {
  std::string generator = "frodo";
  std::string outdir = ".";
  codegen::OptimizeOptions optimize;
  int simd_width = 4;
  bool strict = false;
  int max_errors = diag::Engine::kDefaultMaxErrors;
  bool profile_hooks = false;
  // Total concurrent compiles (the calling thread participates, so the pool
  // gets jobs-1 workers); 1 = fully serial.
  int jobs = 1;
  // Analysis cache directory; empty = cache disabled.
  std::string cache_dir;
  // "", "text" or "json" — per-model redundancy reports collected into
  // ModelOutcome::report.
  std::string report_format;
  // The bench harness measures pure compile throughput without file I/O.
  bool write_outputs = true;

  // -- Autotuning (docs/COSTMODEL.md) ----------------------------------------
  // With optimize.cost_model == kTuned: on a tuned-entry cache miss, measure
  // candidate plans with the JIT (codegen/autotune.hpp) and persist the
  // winning per-block decision vector as `<key>.tuned` beside the ranges
  // entry.  Off, a miss degrades to the static cost model with FRODO-W007.
  bool autotune = false;
  int autotune_reps = 200;
  int autotune_rounds = 3;

  // -- Fault tolerance (docs/ROBUSTNESS.md) ----------------------------------
  // Per-model wall-clock budget; a compile that overruns it unwinds with
  // FRODO-E911 (cooperative in-process, SIGKILL under process isolation).
  // 0 = no deadline.
  long long timeout_per_model_ms = 0;
  // "none" — every model compiles in this process (fast, but a crash or
  // unpollable hang takes the batch down with it); "process" — each model
  // compiles in a forked child, so crashes / hangs / OOMs become structured
  // FRODO-E91x records and the rest of the batch completes.
  std::string isolate = "none";
  // Address-space rlimit per isolated child; 0 = unlimited.  Exceeding it
  // surfaces as a FRODO-E913 OOM record, not a host-wide allocation storm.
  long long memory_per_model_mb = 0;
  // Crashed / timed-out / OOMed isolated compiles are retried up to this
  // many times (transient faults — a cosmic-ray crash, a loaded machine
  // missing a deadline — deserve a second chance; deterministic failures
  // just fail `retries` times and keep their record).
  int retries = 0;
  // Base of the exponential retry backoff: attempt k sleeps
  // retry_backoff_ms * 2^(k-1) before re-forking.
  long long retry_backoff_ms = 100;
};

// Resolved tuned decisions for one model (docs/COSTMODEL.md): the cached
// `<key>.tuned` entry when present, a fresh autotune measurement when
// `options.autotune` is set (persisted back to the cache), or an
// unresolved fallback (FRODO-W007 reported on `engine`) — the planner then
// degrades kTuned to the static cost model.
struct TunedSetup {
  codegen::cost::DecisionVector vector;
  // "cache" | "autotune" | "fallback".
  std::string source = "fallback";
  bool resolved = false;
};
TunedSetup resolve_tuned_decisions(const model::Model& original,
                                   const CheckedModel& checked,
                                   const AnalysisCache* cache,
                                   const BatchOptions& options,
                                   diag::Engine* engine);

struct ModelOutcome {
  std::string input_path;
  std::string model_name;  // empty when the package did not load
  int exit_code = 0;       // 0 ok, 1 model failed, 2 infrastructure
  bool cache_checked = false;
  bool cache_hit = false;
  codegen::GeneratedCode code;  // valid when exit_code == 0
  std::vector<std::string> written;
  std::string report;  // rendered per-model report ("" when off)
  diag::Engine engine;
  trace::Tracer tracer;  // this model's private spans + counters
  long long compile_us = 0;
  // -- Resilience record (docs/ROBUSTNESS.md) --------------------------------
  // "" while healthy; otherwise how the compile ended: "error" (diagnosed),
  // "cancelled" (E910), "timeout" (E911), "crash" (E912), "oom" (E913),
  // "infra" (E914).
  std::string failure_kind;
  // Compile attempts consumed (1 + retries actually used).
  int attempts = 1;
  // Optimizer flag bits (fuse=1, shrink=2, alias=4) masked off by the
  // degradation ladder before the compile succeeded; 0 = no degradation.
  unsigned degraded_mask = 0;
  // Where --cost-model tuned got its decisions: "" (not in tuned mode),
  // "cache" (persisted entry replayed), "autotune" (measured this run),
  // "fallback" (unavailable — compiled with the static model, FRODO-W007).
  std::string tuned_source;
};

struct BatchResult {
  std::vector<ModelOutcome> models;  // in input (manifest) order
  // 0 — every model compiled; 1 — some models failed (per-model records in
  // `models`); 2 — infrastructure error (usage, output I/O, isolation
  // machinery).  Matches single-model `frodoc` (docs/diagnostics.md).
  int exit_code = 0;
  std::string usage_error;           // non-empty when exit_code forced to 2
  long long wall_us = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  // -- Resilience counters ---------------------------------------------------
  long long failed_models = 0;    // exit_code != 0 entries
  long long degraded_models = 0;  // compiled with optimizer flags masked
  long long retries_used = 0;     // extra attempts beyond the first, summed
  long long timeouts = 0;         // E911 records
  long long crashes = 0;          // E912 records
  long long ooms = 0;             // E913 records
};

// Expands one --batch positional into model paths:
//   * directory — every *.slx / *.slxz / *.xml inside, sorted by name;
//   * model file (by extension) — itself;
//   * anything else — a manifest: one path per line ('#' comments and blank
//     lines ignored), relative paths resolved against the manifest's
//     directory.
// FRODO-E904 when nothing usable is found.
Result<std::vector<std::string>> expand_input(const std::string& arg);

BatchResult compile_batch(const std::vector<std::string>& inputs,
                          const BatchOptions& options);

// The batch-level summary + per-model reports ("json" renders one combined
// document; timing fields are confined to the "timing" line so tooling can
// compare runs modulo timing).
std::string render_batch_report(const BatchResult& result,
                                const BatchOptions& options);

// -- Telemetry (docs/OBSERVABILITY.md, "Metrics & event ledger") -------------

// One "frodo.event/1" ledger record for a finished model compile: outcome,
// cache result, decision source, degradation, retries, and per-phase
// timings extracted from the model's trace spans (top-level spans summed by
// name; "total" is the end-to-end compile).  Deterministic apart from the
// record's `timings_us` object.
metrics::CompileEvent outcome_event(const ModelOutcome& outcome,
                                    long long index,
                                    const std::string& generator);

// Every model's ledger record in batch order, regardless of --jobs or
// --isolate (`frodoc --events-out`).
std::vector<metrics::CompileEvent> batch_events(const BatchResult& result,
                                                const BatchOptions& options);

// Aggregated batch rollups (latency percentiles over per-model compile_us).
metrics::Rollups batch_rollups(const BatchResult& result);

// Populates `registry` with the batch's labeled metric families
// (frodo_compiles_total, frodo_compile_latency_seconds, ...) from the
// per-model outcomes — deterministic sample sets for identical results at
// any --jobs; only histogram/gauge *values* carry wall-clock time.
void record_batch_metrics(const BatchResult& result,
                          const BatchOptions& options,
                          metrics::Registry* registry);

// Internal: the per-model pipeline shared by the in-process path and the
// isolated child (batch/isolate.cpp).  Reports into outcome->engine;
// returns the per-model exit code and sets outcome->failure_kind /
// degraded_mask.  Callers install the tracer, cancel token, and fault
// context around it.
int compile_one_model(const std::string& path, const BatchOptions& options,
                      const AnalysisCache* cache, support::ThreadPool* pool,
                      ModelOutcome* outcome);

}  // namespace frodo::batch
