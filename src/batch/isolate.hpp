// Process isolation for batch compiles (`frodoc --batch --isolate=process`).
//
// Cooperative cancellation (support/cancel.hpp) bounds compiles that keep
// reaching poll points; it cannot contain a crash in a pass, an allocation
// storm, or a hang inside a call that never returns.  Isolation mode draws
// the containment boundary at the process instead: every model compiles in
// a forked child with
//
//   * an address-space rlimit (`--memory-per-model`), so an OOM is the
//     child's std::bad_alloc — never the host's;
//   * the per-model deadline enforced twice — cooperatively inside the
//     child (a clean FRODO-E911 record) and by SIGKILL from the parent for
//     children that stop responding;
//   * results streamed back over a pipe as a framed record the parent
//     merges into the ordinary ModelOutcome slot.
//
// A child that dies — signal, OOM exit, kill — becomes a structured
// FRODO-E912/E913/E911 failure record, is retried up to `retries` times
// with exponential backoff (transient faults deserve another chance;
// deterministic ones just keep their record), and the rest of the batch
// completes byte-identically to a clean run.
//
// Fork discipline: the parent never creates the thread pool in this mode —
// children are forked from a single-threaded process (forking a
// multi-threaded process and continuing without exec risks inheriting a
// lock mid-flight).  `--jobs N` still applies: up to N children run
// concurrently, multiplexed with poll(2) from the parent's one thread.
//
// Known trade-off: per-model trace *spans* are not serialized across the
// pipe (counters and diagnostics are), so --isolate=process traces carry
// counters only.
#pragma once

#include <string>
#include <vector>

#include "batch/batch.hpp"

namespace frodo::batch {

// Runs the isolate-mode compile loop, filling `result->models` (which the
// caller has already sized and initialized) for every input.  The serial
// write phase and summary aggregation stay with compile_batch.  `cache` may
// be null.
void compile_batch_isolated(const std::vector<std::string>& inputs,
                            const BatchOptions& options,
                            const AnalysisCache* cache, BatchResult* result);

}  // namespace frodo::batch
