#include "batch/cache.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "blocks/semantics.hpp"
#include "slx/slx.hpp"
#include "support/sha256.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"
#include "support/version.hpp"

namespace frodo::batch {

namespace {

constexpr char kFormatTag[] = "frodo-ranges 1";
// Integrity frame: "sha256:<hex digest of payload>\n" precedes the payload.
constexpr char kChecksumPrefix[] = "sha256:";

std::string intervals_text(const mapping::IndexSet& set) {
  if (set.is_empty()) return "-";
  std::string out;
  for (const mapping::Interval& iv : set.intervals()) {
    if (!out.empty()) out += ",";
    out += std::to_string(iv.lo) + ":" + std::to_string(iv.hi);
  }
  return out;
}

bool parse_intervals(std::string_view text, mapping::IndexSet* out) {
  *out = mapping::IndexSet::empty();
  if (text == "-") return true;
  for (const std::string& part : split(std::string(text), ',')) {
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) return false;
    long long lo = 0;
    long long hi = 0;
    if (!parse_int(part.substr(0, colon), &lo) ||
        !parse_int(part.substr(colon + 1), &hi) || lo > hi)
      return false;
    out->insert(lo, hi);
  }
  return true;
}

}  // namespace

std::string cache_key(const model::Model& model, unsigned flag_mask,
                      std::string_view generator) {
  // Everything the computed ranges (and their consumers' configuration) can
  // depend on goes into the digest; '\n' separators keep fields from
  // concatenating ambiguously.
  std::string content = slx::to_xml(model);
  content += "\nlibrary:";
  content += version_string();
  for (const std::string& type : blocks::registered_types()) {
    content += ",";
    content += type;
  }
  content += "\nflags:" + std::to_string(flag_mask);
  content += "\ngenerator:";
  content += generator;
  return support::sha256_hex(content);
}

std::string serialize_ranges(const range::RangeAnalysis& ranges) {
  std::string out = kFormatTag;
  out += "\nblocks " + std::to_string(ranges.out_ranges.size());
  out += "\ncyclic";
  for (std::size_t id = 0; id < ranges.cyclic.size(); ++id) {
    if (ranges.cyclic[id]) out += " " + std::to_string(id);
  }
  for (std::size_t id = 0; id < ranges.out_ranges.size(); ++id) {
    out += "\nblock " + std::to_string(id) + " out " +
           std::to_string(ranges.out_ranges[id].size()) + " in " +
           std::to_string(ranges.in_ranges[id].size());
    for (const mapping::IndexSet& set : ranges.out_ranges[id])
      out += "\no " + intervals_text(set);
    for (const mapping::IndexSet& set : ranges.in_ranges[id])
      out += "\ni " + intervals_text(set);
  }
  out += "\nend\n";
  return out;
}

Result<range::RangeAnalysis> deserialize_ranges(std::string_view text) {
  using R = Result<range::RangeAnalysis>;
  std::vector<std::string> lines = split(std::string(text), '\n');
  std::size_t at = 0;
  auto next = [&]() -> std::string {
    return at < lines.size() ? lines[at++] : std::string();
  };
  if (next() != kFormatTag) return R::error("bad cache entry format tag");

  const std::string blocks_line = next();
  long long n = 0;
  if (blocks_line.rfind("blocks ", 0) != 0 ||
      !parse_int(blocks_line.substr(7), &n) || n < 0)
    return R::error("bad cache entry block count");

  range::RangeAnalysis ranges;
  ranges.cyclic.assign(static_cast<std::size_t>(n), false);
  ranges.out_ranges.resize(static_cast<std::size_t>(n));
  ranges.in_ranges.resize(static_cast<std::size_t>(n));

  const std::string cyclic_line = next();
  if (cyclic_line.rfind("cyclic", 0) != 0)
    return R::error("bad cache entry cyclic line");
  for (const std::string& tok : split(trim(cyclic_line.substr(6)), ' ')) {
    if (tok.empty()) continue;
    long long id = 0;
    if (!parse_int(tok, &id) || id < 0 || id >= n)
      return R::error("bad cache entry cyclic id");
    ranges.cyclic[static_cast<std::size_t>(id)] = true;
  }

  for (long long id = 0; id < n; ++id) {
    const std::vector<std::string> header = split(trim(next()), ' ');
    long long hdr_id = 0;
    long long outs = 0;
    long long ins = 0;
    if (header.size() != 6 || header[0] != "block" || header[2] != "out" ||
        header[4] != "in" || !parse_int(header[1], &hdr_id) ||
        hdr_id != id || !parse_int(header[3], &outs) || outs < 0 ||
        !parse_int(header[5], &ins) || ins < 0)
      return R::error("bad cache entry block header");
    auto& out_row = ranges.out_ranges[static_cast<std::size_t>(id)];
    auto& in_row = ranges.in_ranges[static_cast<std::size_t>(id)];
    for (long long p = 0; p < outs; ++p) {
      const std::string line = next();
      mapping::IndexSet set = mapping::IndexSet::empty();
      if (line.rfind("o ", 0) != 0 || !parse_intervals(line.substr(2), &set))
        return R::error("bad cache entry output range");
      out_row.push_back(std::move(set));
    }
    for (long long p = 0; p < ins; ++p) {
      const std::string line = next();
      mapping::IndexSet set = mapping::IndexSet::empty();
      if (line.rfind("i ", 0) != 0 || !parse_intervals(line.substr(2), &set))
        return R::error("bad cache entry input range");
      in_row.push_back(std::move(set));
    }
  }
  if (next() != "end") return R::error("bad cache entry trailer");
  return ranges;
}

std::string AnalysisCache::entry_path(const std::string& key) const {
  return dir_ + "/" + key + ".ranges";
}

std::string AnalysisCache::tuned_entry_path(const std::string& key) const {
  return dir_ + "/" + key + ".tuned";
}

bool AnalysisCache::read_framed(const std::string& path,
                                std::string* payload) const {
  namespace fs = std::filesystem;
  if (resident_) {
    std::lock_guard<std::mutex> lock(resident_mutex_);
    auto found = resident_entries_.find(path);
    if (found != resident_entries_.end()) {
      *payload = found->second;
      return true;
    }
  }
  if (dir_.empty()) return false;  // memory-only cache: cold entry
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  // Quarantine anything that fails the integrity check: rename to `*.bad`
  // so the corrupt file stops costing a read-and-reject on every run but
  // stays on disk for inspection.  A miss either way.
  const std::size_t eol = text.find('\n');
  if (eol != std::string::npos && text.compare(0, 7, kChecksumPrefix) == 0) {
    std::string body = text.substr(eol + 1);
    if (text.substr(7, eol - 7) == support::sha256_hex(body)) {
      if (resident_) {
        std::lock_guard<std::mutex> lock(resident_mutex_);
        resident_entries_[path] = body;
      }
      *payload = std::move(body);
      return true;
    }
  }
  trace::count("cache_quarantined");
  std::error_code ec;
  fs::rename(path, path + ".bad", ec);
  if (ec) fs::remove(path, ec);  // cross-device or permission oddity
  return false;
}

void AnalysisCache::write_framed(const std::string& path,
                                 const std::string& payload) const {
  namespace fs = std::filesystem;
  if (resident_) {
    std::lock_guard<std::mutex> lock(resident_mutex_);
    resident_entries_[path] = payload;
  }
  if (dir_.empty()) return;  // memory-only cache: nothing to persist
  std::error_code ec;
  fs::create_directories(dir_, ec);
  std::call_once(sweep_once_, [this] { sweep_stale_tmp_files(); });
  // PID-unique temp + rename: concurrent writers of the same key race to an
  // identical final content, so last-rename-wins is harmless.
  const std::string tmp_path = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << kChecksumPrefix << support::sha256_hex(payload) << "\n" << payload;
    out.flush();
    if (!out.good()) {
      out.close();
      fs::remove(tmp_path, ec);
      return;
    }
  }
  fs::rename(tmp_path, path, ec);
  if (ec) fs::remove(tmp_path, ec);
}

bool AnalysisCache::lookup(const std::string& key,
                           range::RangeAnalysis* out) const {
  namespace fs = std::filesystem;
  const std::string path = entry_path(key);
  std::string payload;
  if (!read_framed(path, &payload)) return false;
  auto ranges = deserialize_ranges(payload);
  if (!ranges.is_ok()) {
    // Checksummed but semantically malformed (hand-edited then re-framed,
    // or a format skew): quarantine like any other bad entry.
    trace::count("cache_quarantined");
    std::error_code ec;
    fs::rename(path, path + ".bad", ec);
    if (ec) fs::remove(path, ec);
    return false;
  }
  *out = std::move(ranges).value();
  return true;
}

void AnalysisCache::store(const std::string& key,
                          const range::RangeAnalysis& ranges) const {
  write_framed(entry_path(key), serialize_ranges(ranges));
}

bool AnalysisCache::lookup_tuned(const std::string& key,
                                 codegen::cost::DecisionVector* out) const {
  namespace fs = std::filesystem;
  const std::string path = tuned_entry_path(key);
  std::string payload;
  if (!read_framed(path, &payload)) return false;
  auto decisions = codegen::cost::deserialize_decisions(payload);
  if (!decisions.is_ok()) {
    trace::count("cache_quarantined");
    std::error_code ec;
    fs::rename(path, path + ".bad", ec);
    if (ec) fs::remove(path, ec);
    return false;
  }
  *out = std::move(decisions).value();
  return true;
}

void AnalysisCache::store_tuned(
    const std::string& key,
    const codegen::cost::DecisionVector& decisions) const {
  write_framed(tuned_entry_path(key),
               codegen::cost::serialize_decisions(decisions));
}

// Removes `*.tmp.<pid>` files whose writer is gone — a worker that crashed
// or was killed mid-store (exactly what --isolate=process does to a wedged
// child) never reaches its rename-or-remove, and those orphans otherwise
// accumulate forever in a shared cache directory.
//
// With a daemon and CLI clients sharing one cache directory the pid probe
// alone is not enough:
//   * kill(pid, 0) can report "alive" for an *unrelated* process that
//     recycled a dead writer's pid (same-PID reuse) — so files older than
//     kTmpSweepMaxAgeSeconds are swept regardless of the probe;
//   * conversely a writer that just created its temp file must never lose
//     it to a concurrently-starting process whose probe misfires (EPERM
//     across uid boundaries makes liveness ambiguous) — so files younger
//     than kTmpSweepGraceSeconds are never swept, no matter what the probe
//     says.
void AnalysisCache::sweep_stale_tmp_files() const {
  namespace fs = std::filesystem;
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const std::size_t tag = name.rfind(".tmp.");
    if (tag == std::string::npos) continue;
    long long pid = 0;
    if (!parse_int(name.substr(tag + 5), &pid) || pid <= 0) continue;
    std::error_code time_ec;
    const auto mtime = fs::last_write_time(entry.path(), time_ec);
    if (time_ec) continue;  // racing writer finished (renamed/removed it)
    const long long age_s =
        std::chrono::duration_cast<std::chrono::seconds>(now - mtime).count();
    if (age_s < kTmpSweepGraceSeconds) continue;
    if (age_s < kTmpSweepMaxAgeSeconds) {
      const bool probably_alive =
          pid == static_cast<long long>(::getpid()) ||
          ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
      if (probably_alive) continue;
    }
    std::error_code remove_ec;
    fs::remove(entry.path(), remove_ec);
  }
}

bool ranges_match_analysis(const range::RangeAnalysis& ranges,
                           const blocks::Analysis& analysis) {
  const std::size_t n =
      static_cast<std::size_t>(analysis.graph->block_count());
  if (ranges.out_ranges.size() != n || ranges.in_ranges.size() != n ||
      ranges.cyclic.size() != n)
    return false;
  for (std::size_t id = 0; id < n; ++id) {
    if (ranges.out_ranges[id].size() != analysis.out_shapes[id].size())
      return false;
  }
  return true;
}

}  // namespace frodo::batch
