#include "batch/isolate.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <new>
#include <thread>

#include "support/cancel.hpp"
#include "support/faultinject.hpp"
#include "support/strings.hpp"

// AddressSanitizer reserves terabytes of virtual address space for its
// shadow mappings, so any RLIMIT_AS cap kills an instrumented child at
// startup ("Failed to mmap") before it can write a record.  Skip the cap
// in sanitized builds; injected OOM faults still reach kExitOom through
// the bad_alloc path.
#if defined(__SANITIZE_ADDRESS__)
#define FRODO_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FRODO_ASAN 1
#endif
#endif

namespace frodo::batch {

namespace {

// Parent-side kill deadlines and retry-backoff sleeps share the cancel
// token's monotonic clock: a wall-clock adjustment mid-batch must neither
// SIGKILL a healthy child early nor stall a pending retry.
using Clock = support::CancelToken::Clock;
static_assert(Clock::is_steady,
              "isolation deadlines/backoff must use a monotonic clock");

// Child exit codes with protocol meaning (anything else, or a signal, is a
// crash).  High values keep clear of errno-style exits.
constexpr int kExitRecord = 0;   // a complete record was written to the pipe
constexpr int kExitOom = 97;     // std::bad_alloc escaped the compile
constexpr int kExitStart = 99;   // the worker failed to start

// ---- Record framing ---------------------------------------------------------
//
// The child streams "<key> <payload-len>\n<payload>\n" frames, ending with
// an explicit "end 0\n\n" so the parent can tell a complete record from a
// child that died mid-write.  Payloads are length-delimited, so diagnostic
// messages may contain anything.

void put_frame(std::string* out, std::string_view key,
               std::string_view payload) {
  *out += key;
  *out += ' ';
  *out += std::to_string(payload.size());
  *out += '\n';
  *out += payload;
  *out += '\n';
}

std::string encode_outcome(const ModelOutcome& outcome) {
  std::string out;
  put_frame(&out, "exit", std::to_string(outcome.exit_code));
  put_frame(&out, "name", outcome.model_name);
  put_frame(&out, "kind", outcome.failure_kind);
  put_frame(&out, "cache", std::string(outcome.cache_checked ? "1" : "0") +
                               (outcome.cache_hit ? "1" : "0"));
  put_frame(&out, "degraded", std::to_string(outcome.degraded_mask));
  put_frame(&out, "prefix", outcome.code.prefix);
  put_frame(&out, "header", outcome.code.header);
  put_frame(&out, "source", outcome.code.source);
  put_frame(&out, "static_doubles",
            std::to_string(outcome.code.static_doubles));
  put_frame(&out, "source_lines", std::to_string(outcome.code.source_lines));
  put_frame(&out, "report", outcome.report);
  for (const diag::Diagnostic& d : outcome.engine.diagnostics()) {
    // severity '\n' code '\n' where '\n' message — message last so embedded
    // newlines cannot shift the other fields.
    std::string payload = std::string(diag::to_string(d.severity)) + "\n" +
                          d.code + "\n" + d.where + "\n" + d.message;
    put_frame(&out, "diag", payload);
  }
  put_frame(&out, "tuned", outcome.tuned_source);
  put_frame(&out, "compile_us", std::to_string(outcome.compile_us));
  for (const auto& [name, value] : outcome.tracer.counters())
    put_frame(&out, "counter", std::to_string(value) + " " + name);
  for (const trace::Span& span : outcome.tracer.spans()) {
    // start dur depth pass '\n' name — name last so spaces can't shift the
    // numeric fields; pass is the line's tail for the same reason.
    put_frame(&out, "span",
              std::to_string(span.start_us) + " " +
                  std::to_string(span.dur_us) + " " +
                  std::to_string(span.depth) + " " + span.pass + "\n" +
                  span.name);
  }
  put_frame(&out, "end", "");
  return out;
}

// Parses the child record into `outcome`; false when the record is
// truncated or malformed (the parent then records FRODO-E914).
bool decode_outcome(const std::string& text, ModelOutcome* outcome) {
  std::size_t at = 0;
  bool complete = false;
  while (at < text.size()) {
    const std::size_t sp = text.find(' ', at);
    const std::size_t eol = text.find('\n', at);
    if (sp == std::string::npos || eol == std::string::npos || sp > eol)
      return false;
    const std::string key = text.substr(at, sp - at);
    long long len = 0;
    if (!parse_int(text.substr(sp + 1, eol - sp - 1), &len) || len < 0)
      return false;
    const std::size_t payload_at = eol + 1;
    if (payload_at + static_cast<std::size_t>(len) + 1 > text.size() + 1)
      return false;
    const std::string payload =
        text.substr(payload_at, static_cast<std::size_t>(len));
    at = payload_at + static_cast<std::size_t>(len) + 1;  // skip '\n'

    if (key == "exit") {
      long long v = 0;
      if (!parse_int(payload, &v)) return false;
      outcome->exit_code = static_cast<int>(v);
    } else if (key == "name") {
      outcome->model_name = payload;
    } else if (key == "kind") {
      outcome->failure_kind = payload;
    } else if (key == "cache" && payload.size() == 2) {
      outcome->cache_checked = payload[0] == '1';
      outcome->cache_hit = payload[1] == '1';
    } else if (key == "degraded") {
      long long v = 0;
      if (!parse_int(payload, &v)) return false;
      outcome->degraded_mask = static_cast<unsigned>(v);
    } else if (key == "prefix") {
      outcome->code.prefix = payload;
    } else if (key == "header") {
      outcome->code.header = payload;
    } else if (key == "source") {
      outcome->code.source = payload;
    } else if (key == "static_doubles") {
      parse_int(payload, &outcome->code.static_doubles);
    } else if (key == "source_lines") {
      long long v = 0;
      if (parse_int(payload, &v))
        outcome->code.source_lines = static_cast<int>(v);
    } else if (key == "diag") {
      std::vector<std::string> fields;
      std::size_t from = 0;
      for (int i = 0; i < 3; ++i) {
        const std::size_t nl = payload.find('\n', from);
        if (nl == std::string::npos) return false;
        fields.push_back(payload.substr(from, nl - from));
        from = nl + 1;
      }
      diag::Diagnostic d;
      d.severity = fields[0] == "error"     ? diag::Severity::kError
                   : fields[0] == "warning" ? diag::Severity::kWarning
                                            : diag::Severity::kNote;
      d.code = fields[1];
      d.where = fields[2];
      d.message = payload.substr(from);
      outcome->engine.report(std::move(d));
    } else if (key == "counter") {
      const std::size_t space = payload.find(' ');
      long long value = 0;
      if (space == std::string::npos ||
          !parse_int(payload.substr(0, space), &value))
        return false;
      outcome->tracer.add_counter(payload.substr(space + 1), value);
    } else if (key == "tuned") {
      outcome->tuned_source = payload;
    } else if (key == "compile_us") {
      parse_int(payload, &outcome->compile_us);
    } else if (key == "span") {
      const std::size_t nl = payload.find('\n');
      if (nl == std::string::npos) return false;
      const std::string head = payload.substr(0, nl);
      trace::Span span;
      span.name = payload.substr(nl + 1);
      std::size_t from = 0;
      long long nums[3] = {0, 0, 0};
      for (int i = 0; i < 3; ++i) {
        const std::size_t space = head.find(' ', from);
        if (space == std::string::npos ||
            !parse_int(head.substr(from, space - from), &nums[i]))
          return false;
        from = space + 1;
      }
      span.start_us = nums[0];
      span.dur_us = nums[1];
      span.depth = static_cast<int>(nums[2]);
      span.pass = head.substr(from);
      outcome->tracer.add_span(std::move(span));
    } else if (key == "end") {
      complete = true;
      break;
    }
    // Unknown keys are skipped: older parents tolerate newer children.
  }
  return complete;
}

// ---- Child side -------------------------------------------------------------

void write_all(int fd, const std::string& data) {
  std::size_t at = 0;
  while (at < data.size()) {
    const ssize_t n = ::write(fd, data.data() + at, data.size() - at);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // parent gone; nothing useful left to do
    }
    at += static_cast<std::size_t>(n);
  }
}

// Compiles one model and streams the outcome record to `fd`.  Runs in the
// forked child; must _exit (never return into the parent's stack teardown).
[[noreturn]] void child_main(int fd, const std::string& path,
                             const BatchOptions& options,
                             const AnalysisCache* cache) {
  if (support::faultinject::at("worker.start")) ::_exit(kExitStart);
#ifndef FRODO_ASAN
  if (options.memory_per_model_mb > 0) {
    struct rlimit limit;
    limit.rlim_cur = limit.rlim_max =
        static_cast<rlim_t>(options.memory_per_model_mb) << 20;
    ::setrlimit(RLIMIT_AS, &limit);
  }
#endif

  ModelOutcome outcome;
  outcome.input_path = path;
  outcome.engine = diag::Engine(options.max_errors);

  // Cooperative deadline inside the child gives a clean E911 record; the
  // parent's SIGKILL is the backstop for code that stops polling.
  support::CancelToken token;
  if (options.timeout_per_model_ms > 0)
    token.set_timeout_ms(options.timeout_per_model_ms);
  support::CancelScope cancel_scope(
      options.timeout_per_model_ms > 0 ? &token : nullptr);
  support::faultinject::ScopedContext fault_context(path);

  trace::InstallScope trace_scope(&outcome.tracer);
  const auto started = Clock::now();
  try {
    outcome.exit_code =
        compile_one_model(path, options, cache, nullptr, &outcome);
  } catch (const std::bad_alloc&) {
    ::_exit(kExitOom);
  }
  outcome.compile_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - started)
                           .count();

  write_all(fd, encode_outcome(outcome));
  ::_exit(kExitRecord);
}

// ---- Parent side ------------------------------------------------------------

struct ChildSlot {
  pid_t pid = -1;
  int fd = -1;             // read end of the result pipe
  std::size_t index = 0;   // model index in the batch
  int attempt = 1;
  std::string buffer;      // record bytes received so far
  bool has_deadline = false;
  Clock::time_point deadline;
  bool killed_on_timeout = false;
};

struct PendingRetry {
  std::size_t index = 0;
  int attempt = 1;         // the attempt about to run
  Clock::time_point ready;
};

long long ms_until(Clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(t -
                                                               Clock::now())
      .count();
}

// One failure record: coded diagnostic + failure kind on the outcome.
void record_failure(ModelOutcome* outcome, const char* code,
                    const char* kind, const std::string& message,
                    int exit_code) {
  outcome->engine.error(code, message, outcome->input_path);
  outcome->failure_kind = kind;
  outcome->exit_code = exit_code;
}

}  // namespace

void compile_batch_isolated(const std::vector<std::string>& inputs,
                            const BatchOptions& options,
                            const AnalysisCache* cache, BatchResult* result) {
  const int jobs = options.jobs < 1 ? 1 : options.jobs;
  const int max_attempts = 1 + (options.retries < 0 ? 0 : options.retries);

  std::vector<ChildSlot> running;
  std::vector<PendingRetry> retries;
  std::size_t next = 0;

  auto spawn = [&](std::size_t index, int attempt) {
    ModelOutcome& outcome = result->models[index];
    int fds[2];
    if (::pipe(fds) != 0) {
      record_failure(&outcome, diag::codes::kIsolateInfra, "infra",
                     std::string("pipe failed: ") + ::strerror(errno), 2);
      return;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      record_failure(&outcome, diag::codes::kIsolateInfra, "infra",
                     std::string("fork failed: ") + ::strerror(errno), 2);
      return;
    }
    if (pid == 0) {
      ::close(fds[0]);
      child_main(fds[1], inputs[index], options, cache);  // never returns
    }
    ::close(fds[1]);
    // Non-blocking reads: the parent drains whatever poll() reported and
    // never wedges on a child that stops mid-frame.
    ::fcntl(fds[0], F_SETFL, ::fcntl(fds[0], F_GETFL, 0) | O_NONBLOCK);
    ChildSlot slot;
    slot.pid = pid;
    slot.fd = fds[0];
    slot.index = index;
    slot.attempt = attempt;
    if (options.timeout_per_model_ms > 0) {
      slot.has_deadline = true;
      // The parent-side kill deadline trails the child's cooperative one so
      // a well-behaved child gets to write its own E911 record first.
      slot.deadline = Clock::now() + std::chrono::milliseconds(
                                         options.timeout_per_model_ms + 250);
    }
    running.push_back(slot);
  };

  auto schedule_retry_or_fail =
      [&](const ChildSlot& slot, const char* code, const char* kind,
          const std::string& message, int exit_code) {
        ModelOutcome& outcome = result->models[slot.index];
        outcome.attempts = slot.attempt;
        if (slot.attempt < max_attempts) {
          outcome.tracer.add_counter("compile_retries", 1);
          PendingRetry retry;
          retry.index = slot.index;
          retry.attempt = slot.attempt + 1;
          const long long backoff =
              options.retry_backoff_ms > 0
                  ? options.retry_backoff_ms << (slot.attempt - 1)
                  : 0;
          retry.ready = Clock::now() + std::chrono::milliseconds(backoff);
          retries.push_back(retry);
          return;
        }
        record_failure(&outcome, code, kind, message, exit_code);
      };

  auto finalize = [&](ChildSlot& slot) {
    int status = 0;
    while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
    }
    ::close(slot.fd);
    ModelOutcome& outcome = result->models[slot.index];
    const std::string attempt_note =
        " (attempt " + std::to_string(slot.attempt) + " of " +
        std::to_string(max_attempts) + ")";

    if (slot.killed_on_timeout) {
      schedule_retry_or_fail(
          slot, diag::codes::kDeadline, "timeout",
          "compile exceeded --timeout-per-model (" +
              std::to_string(options.timeout_per_model_ms) +
              " ms); worker killed" + attempt_note,
          1);
      return;
    }
    if (WIFSIGNALED(status)) {
      schedule_retry_or_fail(
          slot, diag::codes::kChildCrash, "crash",
          "compile worker crashed with signal " +
              std::to_string(WTERMSIG(status)) + attempt_note,
          1);
      return;
    }
    const int child_exit = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (child_exit == kExitOom) {
      schedule_retry_or_fail(
          slot, diag::codes::kChildOom, "oom",
          "compile worker exceeded --memory-per-model (" +
              std::to_string(options.memory_per_model_mb) + " MiB)" +
              attempt_note,
          1);
      return;
    }
    if (child_exit == kExitStart) {
      schedule_retry_or_fail(slot, diag::codes::kIsolateInfra, "infra",
                             "compile worker failed to start" + attempt_note,
                             2);
      return;
    }
    ModelOutcome parsed;
    parsed.input_path = outcome.input_path;
    parsed.engine = diag::Engine(options.max_errors);
    if (child_exit != kExitRecord ||
        !decode_outcome(slot.buffer, &parsed)) {
      schedule_retry_or_fail(
          slot, diag::codes::kIsolateInfra, "infra",
          "compile worker returned no usable result record (exit " +
              std::to_string(child_exit) + ")" + attempt_note,
          2);
      return;
    }
    // Keep retry accounting accumulated on the parent-side outcome across
    // attempts; everything else comes from the child's record.
    const long long prior_retries = outcome.tracer.counter("compile_retries");
    outcome.model_name = std::move(parsed.model_name);
    outcome.exit_code = parsed.exit_code;
    outcome.failure_kind = std::move(parsed.failure_kind);
    outcome.cache_checked = parsed.cache_checked;
    outcome.cache_hit = parsed.cache_hit;
    outcome.degraded_mask = parsed.degraded_mask;
    outcome.tuned_source = std::move(parsed.tuned_source);
    outcome.compile_us = parsed.compile_us;
    outcome.code = std::move(parsed.code);
    outcome.report = std::move(parsed.report);
    outcome.engine = std::move(parsed.engine);
    outcome.tracer = std::move(parsed.tracer);
    if (prior_retries > 0)
      outcome.tracer.add_counter("compile_retries", prior_retries);
    outcome.attempts = slot.attempt;
    if (slot.attempt > 1 && outcome.exit_code == 0)
      outcome.engine.warning(
          diag::codes::kWRetrySucceeded,
          "compile succeeded on attempt " + std::to_string(slot.attempt) +
              " of " + std::to_string(max_attempts),
          outcome.input_path);
  };

  while (next < inputs.size() || !running.empty() || !retries.empty()) {
    // Launch ready retries first (they hold batch slots), then fresh models,
    // up to the concurrency cap.
    for (std::size_t r = 0;
         r < retries.size() && running.size() < static_cast<std::size_t>(jobs);) {
      if (ms_until(retries[r].ready) <= 0) {
        spawn(retries[r].index, retries[r].attempt);
        retries.erase(retries.begin() + static_cast<long>(r));
      } else {
        ++r;
      }
    }
    while (next < inputs.size() &&
           running.size() < static_cast<std::size_t>(jobs)) {
      const std::size_t index = next++;
      ModelOutcome& outcome = result->models[index];
      outcome.tracer.set_metadata("model", outcome.input_path);
      outcome.tracer.set_metadata("generator", options.generator);
      spawn(index, 1);
    }
    if (running.empty()) {
      if (retries.empty()) break;
      // Nothing in flight; sleep until the earliest retry is ready.
      long long wait = 250;
      for (const PendingRetry& retry : retries)
        wait = std::min(wait, ms_until(retry.ready));
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max<long long>(wait, 1)));
      continue;
    }

    // Wait for output, exit, or the nearest deadline.
    std::vector<struct pollfd> fds(running.size());
    for (std::size_t i = 0; i < running.size(); ++i) {
      fds[i].fd = running[i].fd;
      fds[i].events = POLLIN;
      fds[i].revents = 0;
    }
    long long wait_ms = 250;
    for (const ChildSlot& slot : running) {
      if (slot.has_deadline)
        wait_ms = std::min(wait_ms,
                           std::max<long long>(ms_until(slot.deadline), 0));
    }
    ::poll(fds.data(), fds.size(), static_cast<int>(wait_ms));

    for (std::size_t i = running.size(); i-- > 0;) {
      ChildSlot& slot = running[i];
      bool eof = false;
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        char chunk[65536];
        for (;;) {
          const ssize_t n = ::read(slot.fd, chunk, sizeof chunk);
          if (n > 0) {
            slot.buffer.append(chunk, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) eof = true;
          break;  // EOF, EAGAIN, or EINTR; poll again next round
        }
      }
      if (!eof && slot.has_deadline && ms_until(slot.deadline) <= 0) {
        // Unresponsive past the grace window: hard-kill.  The EOF from the
        // dying child's pipe arrives immediately after.
        slot.killed_on_timeout = true;
        ::kill(slot.pid, SIGKILL);
        eof = true;
      }
      if (eof) {
        finalize(slot);
        running.erase(running.begin() + static_cast<long>(i));
      }
    }
  }
}

}  // namespace frodo::batch
