// Content-addressed analysis cache.
//
// Range analysis (Algorithm 1) is the one pipeline pass whose cost grows
// with both model size and mapping complexity, and CI / fuzz / bench runs
// recompile the same models over and over.  The cache keys the *content*
// that determines the analysis result:
//
//   key = sha256( canonical model XML
//               ‖ block-library fingerprint (version + registered types)
//               ‖ optimizer flag mask ‖ generator family )
//
// and stores the serialized per-block calculation ranges.  Content
// addressing is the whole invalidation story: editing the model, upgrading
// the tool, registering new block types or flipping optimizer flags all
// change the key, so entries never go stale — they just stop being found
// (docs/BATCH.md).  Cache I/O failures are soft: an unreadable or corrupt
// entry is a miss, a failed store is ignored, and the compile proceeds.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "codegen/cost.hpp"
#include "model/model.hpp"
#include "range/range_analysis.hpp"
#include "support/status.hpp"

namespace frodo::batch {

// The cache key for `model` under the given configuration.  `flag_mask` is
// the optimizer flag bit set (fuse=1, shrink=2, alias=4) — the mask does not
// change the ranges themselves, but keying on it keeps one entry per build
// configuration and makes hits trivially auditable.  `generator` is the
// generator family name.
std::string cache_key(const model::Model& model, unsigned flag_mask,
                      std::string_view generator);

// Text serialization of a RangeAnalysis (stable, versioned).
std::string serialize_ranges(const range::RangeAnalysis& ranges);
Result<range::RangeAnalysis> deserialize_ranges(std::string_view text);

// Filesystem-backed store: one file per key under `dir`, written atomically
// (temp file + rename) so concurrent batch workers and parallel CI jobs can
// share a cache directory.
//
// Integrity: each entry is framed with a sha256 line over the payload
// ("sha256:<hex>\n" + serialized ranges).  An entry that fails
// verification — truncated by a crashed writer, bit-rotted, hand-edited —
// is *quarantined*: renamed to `<entry>.bad` so it is inspected once, not
// re-read and re-rejected every run.  Temp files abandoned by a dead
// writer (`*.tmp.<pid>` where pid no longer runs) are swept on the first
// store of a run.
class AnalysisCache {
 public:
  explicit AnalysisCache(std::string dir) : dir_(std::move(dir)) {}
  AnalysisCache(const AnalysisCache&) = delete;
  AnalysisCache& operator=(const AnalysisCache&) = delete;

  // Keeps every framed payload this instance reads or writes resident in
  // memory, so a long-lived process (frodod) serves warm lookups without
  // touching disk — and, with an empty `dir`, gets a memory-only cache.
  // Entries are content-addressed, so the resident copy can never go stale
  // against another writer of the same directory: an identical key implies
  // identical content.  Thread-safe (lookups and stores may race across
  // daemon workers).
  void set_resident(bool resident) { resident_ = resident; }
  bool resident() const { return resident_; }

  const std::string& dir() const { return dir_; }
  std::string entry_path(const std::string& key) const;
  // Autotuned per-block decision vectors live beside the ranges entry for
  // the same key, as `<key>.tuned` — same framing, same quarantine rules.
  std::string tuned_entry_path(const std::string& key) const;

  // True on a hit, with the deserialized ranges in `out`.  Corrupt or
  // unreadable entries are misses; entries failing checksum verification
  // are additionally quarantined to `*.bad`.
  bool lookup(const std::string& key, range::RangeAnalysis* out) const;

  // Best-effort atomic store; creates `dir` on demand.
  void store(const std::string& key,
             const range::RangeAnalysis& ranges) const;

  // Tuned-decision entries: a warm batch rerun replays the autotuner's
  // per-block masks from here instead of re-measuring (docs/COSTMODEL.md).
  bool lookup_tuned(const std::string& key,
                    codegen::cost::DecisionVector* out) const;
  void store_tuned(const std::string& key,
                   const codegen::cost::DecisionVector& decisions) const;

 private:
  // Shared entry I/O: checksum-framed read (quarantining failures to
  // `*.bad`) and atomic temp-file + rename write.
  bool read_framed(const std::string& path, std::string* payload) const;
  void write_framed(const std::string& path, const std::string& payload) const;
  void sweep_stale_tmp_files() const;

  std::string dir_;
  mutable std::once_flag sweep_once_;
  // Resident-entry memo (path -> verified payload); only touched when
  // `resident_` is set.
  bool resident_ = false;
  mutable std::mutex resident_mutex_;
  mutable std::map<std::string, std::string> resident_entries_;
};

// Stale temp-file sweep policy (exposed for tests).  A `*.tmp.<pid>` file is
// swept only when it is older than the grace window AND its writer looks
// dead — or older than the hard age cap regardless of the pid check, since
// by then the recorded pid has almost certainly been recycled by an
// unrelated process (same-PID reuse would otherwise pin an orphan forever).
inline constexpr long long kTmpSweepGraceSeconds = 60;
inline constexpr long long kTmpSweepMaxAgeSeconds = 6 * 60 * 60;

// Consistency check before trusting a deserialized entry: the per-block
// port counts must match the model analysis (they always do when the key
// matched — this guards against hand-edited or truncated cache files).
bool ranges_match_analysis(const range::RangeAnalysis& ranges,
                           const blocks::Analysis& analysis);

}  // namespace frodo::batch
