// Structured diagnostics engine.
//
// The generator is a batch tool over untrusted inputs: a run should surface
// *every* problem it can find — with a stable machine-readable code, a
// severity, and the block path or container part it refers to — instead of
// aborting on the first free-text error.  Passes report into an Engine;
// the CLI renders the accumulated list as human-readable text or JSON and
// maps it to an exit code.
//
// Code space (see docs/diagnostics.md for the full catalog):
//   FRODO-E0xx  container ingestion (ZIP)
//   FRODO-E1xx  XML parsing
//   FRODO-E2xx  package / model file structure
//   FRODO-E3xx  model validation (blocks, connections, ports)
//   FRODO-E4xx  analysis / code generation
//   FRODO-E9xx  usage / internal
//   FRODO-Wxxx  warnings (graceful degradation)
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "support/status.hpp"

namespace frodo::diag {

// -- Stable diagnostic codes ---------------------------------------------------
namespace codes {
// Container ingestion (ZIP).
inline constexpr char kZipTooSmall[] = "FRODO-E001";
inline constexpr char kZipNoEndRecord[] = "FRODO-E002";
inline constexpr char kZipTruncated[] = "FRODO-E003";
inline constexpr char kZipBomb[] = "FRODO-E004";
inline constexpr char kZipBadMethod[] = "FRODO-E005";
inline constexpr char kZipBadCrc[] = "FRODO-E006";
inline constexpr char kZipBadSignature[] = "FRODO-E007";
inline constexpr char kZipSizeMismatch[] = "FRODO-E008";
// XML parsing.
inline constexpr char kXmlSyntax[] = "FRODO-E101";
inline constexpr char kXmlTooDeep[] = "FRODO-E102";
inline constexpr char kXmlTooManyAttrs[] = "FRODO-E103";
// Package / model file structure.
inline constexpr char kPkgMissingPart[] = "FRODO-E201";
inline constexpr char kPkgBadModel[] = "FRODO-E202";
inline constexpr char kPkgUnreadable[] = "FRODO-E203";
// Model validation.
inline constexpr char kModelEmptyBlockName[] = "FRODO-E301";
inline constexpr char kModelDuplicateBlockName[] = "FRODO-E302";
inline constexpr char kModelDanglingEndpoint[] = "FRODO-E303";
inline constexpr char kModelBadPort[] = "FRODO-E304";
inline constexpr char kModelMultipleDrivers[] = "FRODO-E305";
inline constexpr char kModelEmptySubsystem[] = "FRODO-E306";
inline constexpr char kModelPortNumbering[] = "FRODO-E307";
inline constexpr char kModelAlgebraicLoop[] = "FRODO-E308";
inline constexpr char kModelUnconnectedInput[] = "FRODO-E309";
inline constexpr char kModelArity[] = "FRODO-E310";
inline constexpr char kModelUnknownBlockType[] = "FRODO-E311";
inline constexpr char kModelTooDeep[] = "FRODO-E312";
// Analysis / code generation.
inline constexpr char kAnalysisShape[] = "FRODO-E401";
inline constexpr char kCodegenEmit[] = "FRODO-E402";
// Index-mapping arithmetic would overflow (IndexSet::affine_expand).
inline constexpr char kMappingOverflow[] = "FRODO-E403";
// An optimizer pass failed; the model may still compile with that pass
// masked off (see kWOptimizerDegraded).
inline constexpr char kOptimizerPass[] = "FRODO-E404";
// Usage / internal.
inline constexpr char kInternal[] = "FRODO-E901";
// Output artifacts (generated sources, trace files) cannot be written.
inline constexpr char kIoWrite[] = "FRODO-E902";
// Extra positional arguments without --batch (the single-model pipeline
// would silently drop all but the first input).
inline constexpr char kUsageExtraInput[] = "FRODO-E903";
// A --batch input cannot be expanded: unreadable manifest, or a directory /
// manifest naming no model files at all.
inline constexpr char kBatchInput[] = "FRODO-E904";
// Two batch models map to the same output file prefix; the later one is not
// written (it would clobber the first).
inline constexpr char kBatchOutputClash[] = "FRODO-E905";
// Fault tolerance (batch / isolation).  A compile was stopped or contained;
// the rest of the batch is unaffected.
inline constexpr char kCancelled[] = "FRODO-E910";
inline constexpr char kDeadline[] = "FRODO-E911";
// An isolated worker died on a signal (crash) before producing a result.
inline constexpr char kChildCrash[] = "FRODO-E912";
// An isolated worker exceeded its memory cap (--memory-per-model).
inline constexpr char kChildOom[] = "FRODO-E913";
// The isolation machinery itself failed (fork/pipe/wait) — an
// infrastructure error, not a verdict on the model.
inline constexpr char kIsolateInfra[] = "FRODO-E914";
// Compilation service (frodod, docs/DAEMON.md).  The daemon's request queue
// is full (backpressure): the request was rejected without compiling and the
// client should retry later.
inline constexpr char kDaemonBusy[] = "FRODO-E920";
// A daemon request line was unparsable or structurally invalid (bad JSON,
// missing/unknown verb, bad option value) — a client bug, not a model one.
inline constexpr char kDaemonProtocol[] = "FRODO-E921";
// Warnings (graceful degradation).
inline constexpr char kWUnknownBlockType[] = "FRODO-W001";
inline constexpr char kWPullbackFallback[] = "FRODO-W002";
inline constexpr char kWErrorLimit[] = "FRODO-W003";
// The model compiled only after masking optimizer flags off (degradation
// ladder); the message names the disabled passes.
inline constexpr char kWOptimizerDegraded[] = "FRODO-W004";
// An isolated compile succeeded after one or more retries.
inline constexpr char kWRetrySucceeded[] = "FRODO-W005";
// An analysis-cache read or write failed; the compile proceeded without
// the cache (slower, never wrong).
inline constexpr char kWCacheDegraded[] = "FRODO-W006";
// Tuned optimizer decisions were unavailable (cache miss without autotune,
// or autotune/measurement failure); the compile fell back to the static
// cost model.  Correctness is unaffected.
inline constexpr char kWTunedFallback[] = "FRODO-W007";
}  // namespace codes

enum class Severity { kNote, kWarning, kError };

std::string_view to_string(Severity severity);

struct Diagnostic {
  std::string code;     // stable "FRODO-Exxx" / "FRODO-Wxxx" identifier
  Severity severity = Severity::kError;
  std::string message;  // human-readable, no trailing newline
  // Source location: a block path ("Sub/Conv"), container part
  // ("simulink/blockdiagram.xml"), or file path.  Empty when global.
  std::string where;
};

// Accumulates diagnostics across passes.  Reporting keeps working after the
// error cap is reached, but further *errors* are counted and dropped so a
// hostile input cannot flood the output (warnings are always kept).  Exact
// repeats — same severity, code, message and location — are reported and
// counted once: several passes legitimately rediscover the same problem
// (e.g. an unknown block type seen by validation and again by each
// analysis), and the user only needs to hear about it once.
class Engine {
 public:
  static constexpr int kDefaultMaxErrors = 20;

  explicit Engine(int max_errors = kDefaultMaxErrors)
      : max_errors_(max_errors < 1 ? 1 : max_errors) {}

  void report(Diagnostic d);
  void error(std::string code, std::string message, std::string where = "");
  void warning(std::string code, std::string message, std::string where = "");
  void note(std::string message, std::string where = "");

  // Reports a failed Status as an error, using the Status's own code when it
  // carries one and `fallback_code` otherwise.  No-op for OK statuses.
  void error_from(const Status& status, std::string fallback_code,
                  std::string where = "");

  int error_count() const { return error_count_; }
  int warning_count() const { return warning_count_; }
  bool has_errors() const { return error_count_ > 0; }
  // True once errors beyond max_errors have been dropped.
  bool error_limit_reached() const { return error_count_ > max_errors_; }
  int max_errors() const { return max_errors_; }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // "error[FRODO-E305] at Sub/Conv: input port 1 has multiple drivers", one
  // diagnostic per line, plus a trailing summary line when non-empty.
  std::string render_text() const;
  // {"diagnostics":[{"code":...,"severity":...,"message":...,"where":...}],
  //  "errors":N,"warnings":N}
  std::string render_json() const;

 private:
  int max_errors_;
  int error_count_ = 0;
  int warning_count_ = 0;
  std::vector<Diagnostic> diagnostics_;
  std::unordered_set<std::string> seen_;  // dedup keys of reported diagnostics
};

// JSON string escaping (control characters, quotes, backslash).
std::string json_escape(std::string_view text);

}  // namespace frodo::diag
