#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace frodo {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  std::string out;
  out.reserve(text.size());
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string format_double(double value) {
  // %.17g always round-trips but is noisy; try increasing precision until the
  // representation parses back exactly.
  char buf[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

bool parse_double(std::string_view text, double* out) {
  text = trim(text);
  if (text.empty()) return false;
  std::string owned(text);
  char* end = nullptr;
  double v = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) return false;
  *out = v;
  return true;
}

bool parse_int(std::string_view text, long long* out) {
  text = trim(text);
  if (text.empty()) return false;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool is_c_identifier(std::string_view name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_')
    return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

std::string sanitize_identifier(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      out.push_back(c);
    else
      out.push_back('_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
    out.insert(out.begin(), 'b');
  return out;
}

}  // namespace frodo
