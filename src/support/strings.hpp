// Small string utilities shared by the parsers and emitters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace frodo {

// Splits on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

// Replaces every occurrence of `from` (must be non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

// Formats a double so that it round-trips exactly when re-parsed
// (shortest representation, C locale).
std::string format_double(double value);

// Parses a double; returns false on trailing garbage or empty input.
bool parse_double(std::string_view text, double* out);

// Parses a (possibly negative) integer; returns false on trailing garbage.
bool parse_int(std::string_view text, long long* out);

// True if `name` is a valid C identifier.
bool is_c_identifier(std::string_view name);

// Converts an arbitrary block name into a valid C identifier fragment
// ("Conv 2-D" -> "Conv_2_D"); never returns an empty string.
std::string sanitize_identifier(std::string_view name);

}  // namespace frodo
