#include "support/json.hpp"

#include <cstdlib>
#include <cstring>

namespace frodo::json {

namespace {

constexpr int kMaxDepth = 256;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> run() {
    Value value;
    FRODO_RETURN_IF_ERROR(parse_value(&value, 0));
    skip_ws();
    if (pos_ != text_.size())
      return fail("trailing garbage after the top-level value");
    return value;
  }

 private:
  Status fail(const std::string& message) const {
    return Status::error("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status expect_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("expected '" + std::string(word) + "'");
    pos_ += word.size();
    return Status::ok();
  }

  Status parse_string(std::string* out) {
    if (!consume('"')) return fail("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) return fail("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — fine for validation purposes).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape '\\" + std::string(1, e) + "'");
      }
    }
  }

  Status parse_number(Value* out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::strchr("0123456789.eE+-", text_[pos_]) != nullptr))
      ++pos_;
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return fail("bad number");
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number '" + token +
                                                    "'");
    out->kind = Value::Kind::kNumber;
    return Status::ok();
  }

  Status parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = Value::Kind::kObject;
      skip_ws();
      if (consume('}')) return Status::ok();
      while (true) {
        skip_ws();
        std::string key;
        FRODO_RETURN_IF_ERROR(parse_string(&key));
        skip_ws();
        if (!consume(':')) return fail("expected ':' after object key");
        Value member;
        FRODO_RETURN_IF_ERROR(parse_value(&member, depth + 1));
        out->members.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) return Status::ok();
        return fail("expected ',' or '}' in object");
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = Value::Kind::kArray;
      skip_ws();
      if (consume(']')) return Status::ok();
      while (true) {
        Value item;
        FRODO_RETURN_IF_ERROR(parse_value(&item, depth + 1));
        out->items.push_back(std::move(item));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return Status::ok();
        return fail("expected ',' or ']' in array");
      }
    }
    if (c == '"') {
      out->kind = Value::Kind::kString;
      return parse_string(&out->string);
    }
    if (c == 't') {
      FRODO_RETURN_IF_ERROR(expect_literal("true"));
      out->kind = Value::Kind::kBool;
      out->boolean = true;
      return Status::ok();
    }
    if (c == 'f') {
      FRODO_RETURN_IF_ERROR(expect_literal("false"));
      out->kind = Value::Kind::kBool;
      out->boolean = false;
      return Status::ok();
    }
    if (c == 'n') {
      FRODO_RETURN_IF_ERROR(expect_literal("null"));
      out->kind = Value::Kind::kNull;
      return Status::ok();
    }
    return parse_number(out);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<Value> parse(std::string_view text) { return Parser(text).run(); }

}  // namespace frodo::json
