// Minimal JSON reader.
//
// The toolchain *emits* several JSON artifacts (diagnostics, Chrome traces,
// redundancy reports, bench trajectory files); this parser exists so the
// repo can *validate* them — in tests and in the pure-ctest schema check
// over the committed BENCH_*.json — without a Python or third-party
// dependency.  It is a strict RFC 8259 subset reader: no comments, no
// trailing commas, objects as ordered key/value lists (duplicate keys are
// kept; find() returns the first).  Inputs are bounded by a nesting-depth
// guard so a hostile file cannot overflow the stack.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.hpp"

namespace frodo::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> items;  // kArray
  std::vector<std::pair<std::string, Value>> members;  // kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // First member with `key`, or nullptr (also for non-objects).
  const Value* find(std::string_view key) const;
};

// Parses exactly one JSON value covering the whole input (surrounding
// whitespace allowed); trailing garbage is an error.
Result<Value> parse(std::string_view text);

}  // namespace frodo::json
