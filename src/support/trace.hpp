// Pipeline tracing and metrics.
//
// The compile pipeline (parse -> flatten -> graph build -> range analysis ->
// optimize passes -> emit) instruments itself with RAII `Scope` spans and
// named counters.  Instrumentation is installation-based: library code calls
// `trace::Scope span("flatten")` / `trace::count("pullbacks")` unconditionally
// and both are no-ops (one relaxed pointer load) unless a `Tracer` has been
// installed for the process — so hot paths pay nothing in normal runs and
// nothing needs to be threaded through the pass APIs.
//
// A populated Tracer renders two ways:
//   * chrome_json() — the Chrome `trace_event` format (load in
//     chrome://tracing or Perfetto); spans become "X" complete events,
//     counters a final "C" event, metadata goes into "otherData".
//   * summary_text() — the human per-phase wall-time + counter table that
//     `frodoc -v` prints to stderr.
//
// The installed tracer is *thread* state: each batch worker installs its
// model's private Tracer while compiling it, so concurrent compiles never
// interleave spans, and absorb() merges the per-model tracers into one batch
// trace afterwards (see docs/OBSERVABILITY.md and docs/BATCH.md).  A Tracer
// instance itself is not thread-safe; it must only be fed from the thread it
// is installed on.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace frodo::trace {

struct Span {
  std::string name;
  long long start_us = 0;  // since the tracer's construction
  long long dur_us = 0;
  int depth = 0;  // nesting level at begin time (0 = top-level phase)
  // Which compilation pass the span ran under ("validate", "generate",
  // "report"; "" outside any pass).  Disambiguates the analysis phases
  // that legitimately run twice — once for validation, once inside the
  // generator — in the exported flame view (Chrome trace `args.pass`).
  std::string pass;
};

class Tracer {
 public:
  Tracer();

  // Free-form key/value attached to the exported trace ("model", "version").
  void set_metadata(std::string key, std::string value);
  void add_counter(std::string_view name, long long delta);

  // Span protocol used by Scope; begin returns the span's index.
  std::size_t begin_span(std::string_view name);
  void end_span(std::size_t index);

  // Appends an already-finished span verbatim (depth/timestamps kept).
  // Used when reassembling a child's trace from the isolation pipe.
  void add_span(Span span);

  // Pass label stamped onto spans begun while it is set; PassScope is the
  // RAII driver.  Returns the previous label for restoration.
  std::string set_pass(std::string pass);
  const std::string& pass() const { return pass_; }

  const std::vector<Span>& spans() const { return spans_; }
  // Counters in first-touch order.
  const std::vector<std::pair<std::string, long long>>& counters() const {
    return counters_;
  }
  // 0 when the counter was never touched.
  long long counter(std::string_view name) const;

  // Appends another tracer's spans (names prefixed with `prefix`, e.g.
  // "Kalman/") and adds its counters into this one.  Timestamps keep the
  // other tracer's epoch; the batch driver uses this to merge per-model
  // traces into one exported file.
  void absorb(const Tracer& other, const std::string& prefix);

  std::string chrome_json() const;
  std::string summary_text() const;

 private:
  long long now_us() const;

  std::chrono::steady_clock::time_point epoch_;
  int depth_ = 0;
  std::string pass_;
  std::vector<Span> spans_;
  std::vector<std::pair<std::string, long long>> counters_;
  std::vector<std::pair<std::string, std::string>> metadata_;
};

// Installs `tracer` as the calling thread's sink (nullptr disables tracing);
// returns the previously installed one so callers can restore it.
Tracer* install(Tracer* tracer);
Tracer* current();

// RAII installation, mirroring support::CancelScope: the previous tracer is
// restored on *every* exit path, including exceptions.  Long-lived
// multi-request processes (the batch workers, the frodod daemon) must use
// this instead of a manual install/restore pair — a request that unwinds
// past a missed restore would leave its tracer installed on the thread, and
// the next request compiled there would interleave spans into it.
class InstallScope {
 public:
  explicit InstallScope(Tracer* tracer) : previous_(install(tracer)) {}
  ~InstallScope() { install(previous_); }
  InstallScope(const InstallScope&) = delete;
  InstallScope& operator=(const InstallScope&) = delete;

 private:
  Tracer* previous_;
};

// RAII span over the installed tracer; no-op when tracing is off.
class Scope {
 public:
  explicit Scope(std::string_view name);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Tracer* tracer_;
  std::size_t index_ = 0;
};

// RAII pass label over the installed tracer: spans begun inside the scope
// carry `pass` in the Chrome trace args.  No-op when tracing is off.
class PassScope {
 public:
  explicit PassScope(std::string_view pass);
  ~PassScope();
  PassScope(const PassScope&) = delete;
  PassScope& operator=(const PassScope&) = delete;

 private:
  Tracer* tracer_;
  std::string previous_;
};

inline void count(std::string_view name, long long delta = 1) {
  if (Tracer* t = current()) t->add_counter(name, delta);
}

}  // namespace frodo::trace
