#include "support/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "support/diag.hpp"
#include "support/version.hpp"

namespace frodo::trace {

namespace {

// Thread-local so batch workers trace the model they are compiling into
// that model's own Tracer without locking.
thread_local Tracer* g_tracer = nullptr;

}  // namespace

Tracer* install(Tracer* tracer) {
  Tracer* previous = g_tracer;
  g_tracer = tracer;
  return previous;
}

Tracer* current() { return g_tracer; }

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

long long Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::set_metadata(std::string key, std::string value) {
  for (auto& [k, v] : metadata_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  metadata_.emplace_back(std::move(key), std::move(value));
}

void Tracer::add_counter(std::string_view name, long long delta) {
  for (auto& [k, v] : counters_) {
    if (k == name) {
      v += delta;
      return;
    }
  }
  counters_.emplace_back(std::string(name), delta);
}

long long Tracer::counter(std::string_view name) const {
  for (const auto& [k, v] : counters_) {
    if (k == name) return v;
  }
  return 0;
}

std::size_t Tracer::begin_span(std::string_view name) {
  Span span;
  span.name = std::string(name);
  span.start_us = now_us();
  span.depth = depth_++;
  span.pass = pass_;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void Tracer::add_span(Span span) { spans_.push_back(std::move(span)); }

std::string Tracer::set_pass(std::string pass) {
  std::string previous = std::move(pass_);
  pass_ = std::move(pass);
  return previous;
}

void Tracer::end_span(std::size_t index) {
  if (index >= spans_.size()) return;
  Span& span = spans_[index];
  span.dur_us = std::max<long long>(0, now_us() - span.start_us);
  if (depth_ > 0) --depth_;
}

Scope::Scope(std::string_view name) : tracer_(current()) {
  if (tracer_ != nullptr) index_ = tracer_->begin_span(name);
}

Scope::~Scope() {
  if (tracer_ != nullptr) tracer_->end_span(index_);
}

PassScope::PassScope(std::string_view pass) : tracer_(current()) {
  if (tracer_ != nullptr)
    previous_ = tracer_->set_pass(std::string(pass));
}

PassScope::~PassScope() {
  if (tracer_ != nullptr) tracer_->set_pass(std::move(previous_));
}

void Tracer::absorb(const Tracer& other, const std::string& prefix) {
  for (const Span& span : other.spans_) {
    Span merged = span;
    merged.name = prefix + merged.name;
    spans_.push_back(std::move(merged));
  }
  for (const auto& [name, value] : other.counters_)
    add_counter(name, value);
}

std::string Tracer::chrome_json() const {
  // https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
  // "X" complete events carry ts + dur in microseconds; one final "C"
  // counter event snapshots the accumulated pipeline counters.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + diag::json_escape(span.name) +
           "\",\"ph\":\"X\",\"ts\":" + std::to_string(span.start_us) +
           ",\"dur\":" + std::to_string(span.dur_us) +
           ",\"pid\":1,\"tid\":1,\"args\":{\"depth\":" +
           std::to_string(span.depth);
    if (!span.pass.empty())
      out += ",\"pass\":\"" + diag::json_escape(span.pass) + "\"";
    out += "}}";
  }
  if (!counters_.empty()) {
    long long ts = 0;
    for (const Span& span : spans_)
      ts = std::max(ts, span.start_us + span.dur_us);
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"counters\",\"ph\":\"C\",\"ts\":" +
           std::to_string(ts) + ",\"pid\":1,\"args\":{";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      if (i != 0) out += ",";
      out += "\"" + diag::json_escape(counters_[i].first) +
             "\":" + std::to_string(counters_[i].second);
    }
    out += "}}";
  }
  out += ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":"
         "{\"name\":\"frodoc\"}}";
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  out += "\"version\":\"" + diag::json_escape(version_string()) + "\"";
  for (const auto& [k, v] : metadata_) {
    out += ",\"" + diag::json_escape(k) + "\":\"" + diag::json_escape(v) +
           "\"";
  }
  if (!counters_.empty()) {
    out += ",\"counters\":{";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      if (i != 0) out += ",";
      out += "\"" + diag::json_escape(counters_[i].first) +
             "\":" + std::to_string(counters_[i].second);
    }
    out += "}";
  }
  out += "}}\n";
  return out;
}

std::string Tracer::summary_text() const {
  std::string out = "pipeline phases (wall time):\n";
  for (const Span& span : spans_) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %*s%-*s %9.3f ms\n", span.depth * 2,
                  "", 28 - span.depth * 2, span.name.c_str(),
                  static_cast<double>(span.dur_us) / 1000.0);
    out += buf;
  }
  if (!counters_.empty()) {
    out += "pipeline counters:\n";
    for (const auto& [name, value] : counters_) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "  %-28s %lld\n", name.c_str(), value);
      out += buf;
    }
  }
  return out;
}

}  // namespace frodo::trace
