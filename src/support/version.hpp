// Build identification, generated at configure time (see
// src/support/CMakeLists.txt's configure_file of version.cpp.in).
//
// Every machine-readable artifact the toolchain emits — `--report json`,
// `--trace-out` metadata, bench JSON metadata blocks — embeds
// version_string() so results stay attributable to the build that produced
// them.  `frodoc --version` prints the same string.
#pragma once

namespace frodo {

// "frodo-codegen <git describe> (<compiler>, <build type>)".
const char* version_string();

// The individual components.
const char* version_revision();    // git describe --always --dirty
const char* version_compiler();    // e.g. "GNU 12.2.0"
const char* version_build_type();  // e.g. "RelWithDebInfo"

}  // namespace frodo
