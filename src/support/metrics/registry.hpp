// Compile-fleet telemetry: a registry of labeled counters, gauges and
// log-scale latency histograms.
//
// This is the fleet-facing metrics surface the `frodod` daemon will serve
// from its `/metrics` endpoint, built now so the batch CLI, the bench
// harness and CI all speak it first.  It supersedes the flat trace counters
// for aggregate questions (the per-model trace counters remain the
// per-compile diagnostic surface — see docs/OBSERVABILITY.md):
//
//   * samples are *labeled* (`frodo_compile_latency_seconds{generator=
//     "frodo",outcome="ok"}`), so one family covers every generator and
//     failure mode instead of one flat counter per combination;
//   * latency distributions are log-scale histograms (doubling buckets from
//     100 us), so p50/p95/p99 survive aggregation across a fleet;
//   * rendering is deterministic — families sorted by name, samples by
//     label string — so two runs of the same batch produce byte-identical
//     exposition text regardless of worker interleaving.
//
// Instrumentation is installation-based like the tracer: `metrics::count()`
// et al. are a single relaxed atomic load when no Registry is installed, so
// un-instrumented runs pay nothing.  Unlike the thread-local tracer the
// installed registry is *process-global* and the Registry itself is
// thread-safe (a mutex around low-frequency events), because fleet counters
// are shared state by definition.
//
// Two sinks (docs/OBSERVABILITY.md documents both schemas):
//   * prometheus_text() — the Prometheus text exposition format (# HELP /
//     # TYPE / samples; histograms as cumulative `_bucket{le=...}` series
//     plus `_sum` / `_count`);
//   * json_snapshot() — a schema-versioned JSON document embedding the
//     `frodoc --version` build metadata, every family (flagged `"timing"`
//     when its values depend on the wall clock, so tooling can compare two
//     runs modulo timing), and optional batch rollups.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace frodo::metrics {

// Ordered key/value label set.  Keys must be unique; construction sorts by
// key so equal label sets compare equal regardless of call-site order.
class Labels {
 public:
  Labels() = default;
  Labels(std::initializer_list<std::pair<std::string, std::string>> kv);

  const std::vector<std::pair<std::string, std::string>>& pairs() const {
    return kv_;
  }
  // Canonical rendering used as the sample key and in the exposition text:
  // `key="value",...` with escaped values, empty for the empty set.
  std::string text() const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

enum class Kind { kCounter, kGauge, kHistogram };

std::string_view kind_name(Kind kind);

// Log-scale histogram bucket upper bounds in seconds: doubling from 100 us
// to ~13.1 s (18 bounds), plus the implicit +Inf bucket.  Fixed at compile
// time so every producer in the fleet exposes mergeable series.
const std::vector<double>& histogram_bounds();

struct Sample {
  std::string labels;  // Labels::text()
  double value = 0.0;  // counter/gauge value
  // Histogram state (kind == kHistogram): per-bound counts (non-cumulative;
  // rendering accumulates), observations beyond the last bound, sum, count.
  std::vector<long long> buckets;
  long long overflow = 0;
  double sum = 0.0;
  long long count = 0;
};

struct Family {
  std::string name;
  Kind kind = Kind::kCounter;
  std::string help;
  // True when the family's values depend on the wall clock (latencies,
  // rates): tooling that diffs two runs for determinism drops these.
  bool timing = false;
  std::map<std::string, Sample> samples;  // by label text
};

// Aggregated batch rollups, embedded in the snapshot and printed under -v.
// Deterministic fields live at the top level; everything wall-clock-derived
// is confined to the timing sub-fields (suffix `_us` / `models_per_sec`).
struct Rollups {
  long long models = 0;
  long long ok = 0;
  long long failed = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long retries = 0;
  long long degraded = 0;
  // Timing-dependent.
  long long wall_us = 0;
  double models_per_sec = 0.0;
  long long p50_us = 0;
  long long p95_us = 0;
  long long p99_us = 0;
};

// Percentile helper: the nearest-rank percentile of `values_us` (sorted
// internally; empty input yields 0).
long long percentile_us(std::vector<long long> values_us, double pct);

// Human rollup summary printed to stderr by `frodoc --batch -v`.
std::string rollup_text(const Rollups& rollups);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Counters accumulate, gauges overwrite, histograms observe seconds into
  // the fixed log-scale buckets.  A family's kind is pinned by its first
  // touch; later calls with a different kind are ignored (malformed
  // instrumentation must not corrupt the export).
  void add(std::string_view name, const Labels& labels, double delta = 1.0);
  void set(std::string_view name, const Labels& labels, double value);
  void observe(std::string_view name, const Labels& labels, double seconds);

  // Adds another registry's samples into this one (counters and histograms
  // sum; gauges take the other's value).
  void absorb(const Registry& other);

  bool empty() const;

  // Prometheus text exposition format, families sorted by name, samples by
  // label text.  Ends with a trailing newline.
  std::string prometheus_text() const;

  // Schema-versioned JSON snapshot ("frodo.metrics/1"), embedding the
  // frodoc build identification; `rollups` (optional) lands in a "rollups"
  // object.  Parseable by support/json.
  std::string json_snapshot(const Rollups* rollups = nullptr) const;

 private:
  Sample& sample(std::string_view name, Kind kind, const Labels& labels,
                 bool* kind_ok);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

// Installs `registry` as the process-wide sink (nullptr disables); returns
// the previous one.  The free helpers below are no-ops (one relaxed load)
// while nothing is installed.
Registry* install(Registry* registry);
Registry* current();

void count(std::string_view name, const Labels& labels = {},
           double delta = 1.0);
void gauge(std::string_view name, const Labels& labels, double value);
void observe_seconds(std::string_view name, const Labels& labels,
                     double seconds);

}  // namespace frodo::metrics
