#include "support/metrics/ledger.hpp"

#include "support/diag.hpp"

namespace frodo::metrics {

std::string event_json_line(const CompileEvent& e) {
  std::string out = "{\"schema\": \"frodo.event/1\"";
  out += ", \"index\": " + std::to_string(e.index);
  out += ", \"input\": \"" + diag::json_escape(e.input) + "\"";
  out += ", \"model\": \"" + diag::json_escape(e.model) + "\"";
  out += ", \"generator\": \"" + diag::json_escape(e.generator) + "\"";
  out += ", \"outcome\": \"" + diag::json_escape(e.outcome) + "\"";
  out += ", \"exit_code\": " + std::to_string(e.exit_code);
  out += ", \"cache\": \"" + diag::json_escape(e.cache) + "\"";
  out += ", \"tuned_source\": \"" + diag::json_escape(e.tuned_source) + "\"";
  out += ", \"degraded\": \"" + diag::json_escape(e.degraded) + "\"";
  out += ", \"attempts\": " + std::to_string(e.attempts);
  out += ", \"retries\": " + std::to_string(e.attempts > 0 ? e.attempts - 1
                                                           : 0);
  out += ", \"errors\": " + std::to_string(e.errors);
  out += ", \"warnings\": " + std::to_string(e.warnings);
  // The one timing-bearing key; determinism tooling drops it wholesale.
  out += ", \"timings_us\": {";
  bool first = true;
  for (const auto& [phase, us] : e.timings_us) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + diag::json_escape(phase) + "\": " + std::to_string(us);
  }
  out += "}}\n";
  return out;
}

std::string ledger_text(const std::vector<CompileEvent>& events) {
  std::string out;
  for (const auto& e : events) out += event_json_line(e);
  return out;
}

}  // namespace frodo::metrics
