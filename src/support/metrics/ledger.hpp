// Per-compile event ledger: one JSONL record per model compile, the
// append-only "what did each compile actually do" companion to the
// aggregate registry.  `frodoc --batch --events-out FILE` writes one line
// per model in batch order regardless of `--jobs`; `frodod` will append to
// the same format per request.
//
// Record schema "frodo.event/1" (docs/OBSERVABILITY.md):
//
//   {"schema": "frodo.event/1", "index": 0, "input": "m/Back.slxz",
//    "model": "Back", "generator": "frodo", "outcome": "ok",
//    "exit_code": 0, "cache": "hit", "tuned_source": "cache",
//    "degraded": "none", "attempts": 1, "retries": 0,
//    "errors": 0, "warnings": 1,
//    "timings_us": {"total": 1234, "validate": 10, "analyze": 500, ...}}
//
// Every wall-clock-derived number is confined to the `timings_us` object —
// dropping that one key makes two ledgers of the same batch byte-
// comparable across `--jobs`, warm/cold caches with identical results, and
// `--isolate process` (tests/batch_test.cpp pins this).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace frodo::metrics {

struct CompileEvent {
  long long index = 0;       // position in batch order
  std::string input;         // path as given
  std::string model;         // model name ("" when the package didn't load)
  std::string generator;
  std::string outcome;       // "ok" | "error" | "cancelled" | "timeout" |
                             // "crash" | "oom" | "infra"
  int exit_code = 0;
  std::string cache;         // "hit" | "miss" | "off"
  std::string tuned_source;  // "" (not tuned) | "cache" | "autotune" |
                             // "fallback"
  std::string degraded;      // "none" or the shed pass mask ("fuse+shrink")
  int attempts = 1;
  int errors = 0;
  int warnings = 0;
  // Phase name -> microseconds, plus "total"; insertion order preserved.
  std::vector<std::pair<std::string, long long>> timings_us;
};

// One JSONL line (single line, trailing '\n'), fields in schema order so
// identical events render identical bytes.
std::string event_json_line(const CompileEvent& event);

// The whole ledger: event_json_line per event, in order.
std::string ledger_text(const std::vector<CompileEvent>& events);

}  // namespace frodo::metrics
