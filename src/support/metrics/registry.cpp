#include "support/metrics/registry.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>

#include "support/diag.hpp"
#include "support/version.hpp"

namespace frodo::metrics {

namespace {

// Known family descriptors: help text and the timing flag ride with the
// name so every producer renders identical metadata.  Unknown names still
// work (generic help, non-timing) — the table is documentation-grade, not
// a gate.
struct Descriptor {
  std::string_view name;
  std::string_view help;
  bool timing;
};

constexpr Descriptor kDescriptors[] = {
    {"frodo_build_info",
     "Build identification; value is always 1, labels carry the version.",
     false},
    {"frodo_compiles_total", "Model compiles by generator and outcome.",
     false},
    {"frodo_compile_latency_seconds",
     "End-to-end per-model compile latency.", true},
    {"frodo_compile_phase_seconds",
     "Per-phase compile latency (validate/analyze/emit/...).", true},
    {"frodo_cache_lookups_total",
     "Analysis-cache lookups by result (hit/miss/quarantined).", false},
    {"frodo_tuned_decisions_total",
     "Cost-model decision vectors by source (cache/autotune/fallback/"
     "static/off).",
     false},
    {"frodo_retries_total", "Isolated-child re-forks after failures.",
     false},
    {"frodo_degraded_compiles_total",
     "Compiles that shed an optimizer pass on the degradation ladder.",
     false},
    {"frodo_batch_models", "Models in the last batch.", false},
    {"frodo_batch_jobs", "Worker count of the last batch.", false},
    {"frodo_batch_wall_seconds", "Wall time of the last batch.", true},
    {"frodo_batch_models_per_sec", "Throughput of the last batch.", true},
    {"frodo_compile_latency_quantile_seconds",
     "Batch latency quantiles (nearest-rank, label q=0.5/0.95/0.99).",
     true},
};

const Descriptor* find_descriptor(std::string_view name) {
  for (const auto& d : kDescriptors) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

// %g loses no information for counts and keeps latencies readable; render
// integral values without an exponent so counters look like counters.
std::string render_value(double v) {
  char buf[64];
  if (v == static_cast<long long>(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string render_bound(double b) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", b);
  return buf;
}

// Prometheus label values escape backslash, double-quote and newline.
std::string label_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::atomic<Registry*> g_registry{nullptr};

}  // namespace

Labels::Labels(std::initializer_list<std::pair<std::string, std::string>> kv)
    : kv_(kv) {
  std::sort(kv_.begin(), kv_.end());
}

std::string Labels::text() const {
  std::string out;
  for (const auto& [k, v] : kv_) {
    if (!out.empty()) out += ',';
    out += k + "=\"" + label_escape(v) + "\"";
  }
  return out;
}

std::string_view kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "counter";
}

const std::vector<double>& histogram_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    double bound = 0.0001;  // 100 us
    for (int i = 0; i < 18; ++i) {
      b.push_back(bound);
      bound *= 2.0;
    }
    return b;
  }();
  return bounds;
}

long long percentile_us(std::vector<long long> values_us, double pct) {
  if (values_us.empty()) return 0;
  std::sort(values_us.begin(), values_us.end());
  // Nearest-rank: ceil(p/100 * N), 1-based.
  size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(values_us.size())));
  if (rank == 0) rank = 1;
  if (rank > values_us.size()) rank = values_us.size();
  return values_us[rank - 1];
}

std::string rollup_text(const Rollups& r) {
  char buf[512];
  std::string out = "batch rollups:\n";
  std::snprintf(buf, sizeof(buf),
                "  models %lld  ok %lld  failed %lld\n"
                "  cache hits %lld  misses %lld  retries %lld  degraded "
                "%lld\n",
                r.models, r.ok, r.failed, r.cache_hits, r.cache_misses,
                r.retries, r.degraded);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  wall %.3f ms  %.2f models/sec  latency p50 %.3f ms  "
                "p95 %.3f ms  p99 %.3f ms\n",
                r.wall_us / 1000.0, r.models_per_sec, r.p50_us / 1000.0,
                r.p95_us / 1000.0, r.p99_us / 1000.0);
  out += buf;
  return out;
}

Sample& Registry::sample(std::string_view name, Kind kind,
                         const Labels& labels, bool* kind_ok) {
  auto [it, inserted] = families_.try_emplace(std::string(name));
  Family& fam = it->second;
  if (inserted) {
    fam.name = std::string(name);
    fam.kind = kind;
    if (const Descriptor* d = find_descriptor(name)) {
      fam.help = std::string(d->help);
      fam.timing = d->timing;
    } else {
      fam.help = fam.name + ".";
    }
  }
  *kind_ok = fam.kind == kind;
  std::string key = labels.text();
  auto [sit, sinserted] = fam.samples.try_emplace(key);
  Sample& s = sit->second;
  if (sinserted) {
    s.labels = key;
    if (fam.kind == Kind::kHistogram) {
      s.buckets.assign(histogram_bounds().size(), 0);
    }
  }
  return s;
}

void Registry::add(std::string_view name, const Labels& labels,
                   double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool ok = false;
  Sample& s = sample(name, Kind::kCounter, labels, &ok);
  if (ok) s.value += delta;
}

void Registry::set(std::string_view name, const Labels& labels,
                   double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool ok = false;
  Sample& s = sample(name, Kind::kGauge, labels, &ok);
  if (ok) s.value = value;
}

void Registry::observe(std::string_view name, const Labels& labels,
                       double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool ok = false;
  Sample& s = sample(name, Kind::kHistogram, labels, &ok);
  if (!ok) return;
  const auto& bounds = histogram_bounds();
  bool bucketed = false;
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (seconds <= bounds[i]) {
      ++s.buckets[i];
      bucketed = true;
      break;
    }
  }
  if (!bucketed) ++s.overflow;
  s.sum += seconds;
  ++s.count;
}

void Registry::absorb(const Registry& other) {
  // Snapshot under the other's lock, merge under ours (never both at
  // once, so two absorbs can't deadlock).
  std::map<std::string, Family> theirs;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    theirs = other.families_;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, fam] : theirs) {
    auto [it, inserted] = families_.try_emplace(name, fam);
    if (inserted) continue;
    Family& mine = it->second;
    if (mine.kind != fam.kind) continue;
    for (const auto& [key, s] : fam.samples) {
      auto [sit, sinserted] = mine.samples.try_emplace(key, s);
      if (sinserted) continue;
      Sample& m = sit->second;
      switch (mine.kind) {
        case Kind::kCounter: m.value += s.value; break;
        case Kind::kGauge: m.value = s.value; break;
        case Kind::kHistogram:
          for (size_t i = 0; i < m.buckets.size() && i < s.buckets.size();
               ++i) {
            m.buckets[i] += s.buckets[i];
          }
          m.overflow += s.overflow;
          m.sum += s.sum;
          m.count += s.count;
          break;
      }
    }
  }
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return families_.empty();
}

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " ";
    out += std::string(kind_name(fam.kind)) + "\n";
    for (const auto& [key, s] : fam.samples) {
      if (fam.kind == Kind::kHistogram) {
        const auto& bounds = histogram_bounds();
        long long cumulative = 0;
        for (size_t i = 0; i < bounds.size(); ++i) {
          cumulative += s.buckets[i];
          out += name + "_bucket{";
          if (!key.empty()) out += key + ",";
          out += "le=\"" + render_bound(bounds[i]) + "\"} " +
                 render_value(static_cast<double>(cumulative)) + "\n";
        }
        cumulative += s.overflow;
        out += name + "_bucket{";
        if (!key.empty()) out += key + ",";
        out += "le=\"+Inf\"} " +
               render_value(static_cast<double>(cumulative)) + "\n";
        out += name + "_sum";
        if (!key.empty()) out += "{" + key + "}";
        out += " " + render_value(s.sum) + "\n";
        out += name + "_count";
        if (!key.empty()) out += "{" + key + "}";
        out += " " + render_value(static_cast<double>(s.count)) + "\n";
      } else {
        out += name;
        if (!key.empty()) out += "{" + key + "}";
        out += " " + render_value(s.value) + "\n";
      }
    }
  }
  return out;
}

std::string Registry::json_snapshot(const Rollups* rollups) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n";
  out += "  \"schema\": \"frodo.metrics/1\",\n";
  out += "  \"version\": \"" + diag::json_escape(version_string()) + "\",\n";
  out += "  \"families\": [";
  bool first_fam = true;
  for (const auto& [name, fam] : families_) {
    out += first_fam ? "\n" : ",\n";
    first_fam = false;
    out += "    {\"name\": \"" + diag::json_escape(name) + "\", \"type\": \"";
    out += std::string(kind_name(fam.kind)) + "\", \"help\": \"" +
           diag::json_escape(fam.help) + "\", \"timing\": ";
    out += fam.timing ? "true" : "false";
    out += ", \"samples\": [";
    bool first_s = true;
    for (const auto& [key, s] : fam.samples) {
      out += first_s ? "\n" : ",\n";
      first_s = false;
      out += "      {\"labels\": \"" + diag::json_escape(key) + "\", ";
      if (fam.kind == Kind::kHistogram) {
        out += "\"count\": " +
               render_value(static_cast<double>(s.count)) +
               ", \"sum\": " + render_value(s.sum) + ", \"buckets\": [";
        const auto& bounds = histogram_bounds();
        long long cumulative = 0;
        for (size_t i = 0; i < bounds.size(); ++i) {
          cumulative += s.buckets[i];
          if (i) out += ", ";
          out += "{\"le\": " + render_bound(bounds[i]) + ", \"count\": " +
                 render_value(static_cast<double>(cumulative)) + "}";
        }
        out += "]}";
      } else {
        out += "\"value\": " + render_value(s.value) + "}";
      }
    }
    out += first_s ? "]}" : "\n    ]}";
  }
  out += first_fam ? "],\n" : "\n  ],\n";
  out += "  \"rollups\": ";
  if (rollups) {
    const Rollups& r = *rollups;
    char buf[160];
    out += "{\n";
    std::snprintf(buf, sizeof(buf),
                  "    \"models\": %lld, \"ok\": %lld, \"failed\": %lld,\n",
                  r.models, r.ok, r.failed);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "    \"cache_hits\": %lld, \"cache_misses\": %lld, "
                  "\"retries\": %lld, \"degraded\": %lld,\n",
                  r.cache_hits, r.cache_misses, r.retries, r.degraded);
    out += buf;
    // Everything wall-clock-derived lives under this one key, so tooling
    // can diff two snapshots by dropping "timing".
    std::snprintf(buf, sizeof(buf),
                  "    \"timing\": {\"wall_us\": %lld, \"models_per_sec\": "
                  "%.6g, \"p50_us\": %lld, \"p95_us\": %lld, \"p99_us\": "
                  "%lld}\n",
                  r.wall_us, r.models_per_sec, r.p50_us, r.p95_us,
                  r.p99_us);
    out += buf;
    out += "  }\n";
  } else {
    out += "null\n";
  }
  out += "}\n";
  return out;
}

Registry* install(Registry* registry) {
  return g_registry.exchange(registry, std::memory_order_acq_rel);
}

Registry* current() {
  return g_registry.load(std::memory_order_relaxed);
}

void count(std::string_view name, const Labels& labels, double delta) {
  if (Registry* r = current()) r->add(name, labels, delta);
}

void gauge(std::string_view name, const Labels& labels, double value) {
  if (Registry* r = current()) r->set(name, labels, value);
}

void observe_seconds(std::string_view name, const Labels& labels,
                     double seconds) {
  if (Registry* r = current()) r->observe(name, labels, seconds);
}

}  // namespace frodo::metrics
