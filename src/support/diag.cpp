#include "support/diag.hpp"

namespace frodo::diag {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "error";
}

void Engine::report(Diagnostic d) {
  // Exact repeats (several passes rediscovering the same problem) are
  // reported and counted once.  Length prefixes keep the key unambiguous
  // whatever bytes the fields contain.
  std::string key;
  for (std::string_view field :
       {std::string_view(d.code), to_string(d.severity),
        std::string_view(d.message), std::string_view(d.where)}) {
    key += std::to_string(field.size());
    key += ':';
    key += field;
  }
  if (!seen_.insert(std::move(key)).second) return;
  if (d.severity == Severity::kError) {
    ++error_count_;
    if (error_count_ > max_errors_) {
      if (error_count_ == max_errors_ + 1) {
        diagnostics_.push_back(Diagnostic{
            codes::kWErrorLimit, Severity::kNote,
            "too many errors; further errors suppressed (--max-errors=" +
                std::to_string(max_errors_) + ")",
            ""});
      }
      return;
    }
  } else if (d.severity == Severity::kWarning) {
    ++warning_count_;
  }
  diagnostics_.push_back(std::move(d));
}

void Engine::error(std::string code, std::string message, std::string where) {
  report(Diagnostic{std::move(code), Severity::kError, std::move(message),
                    std::move(where)});
}

void Engine::warning(std::string code, std::string message,
                     std::string where) {
  report(Diagnostic{std::move(code), Severity::kWarning, std::move(message),
                    std::move(where)});
}

void Engine::note(std::string message, std::string where) {
  report(Diagnostic{"", Severity::kNote, std::move(message),
                    std::move(where)});
}

void Engine::error_from(const Status& status, std::string fallback_code,
                        std::string where) {
  if (status.is_ok()) return;
  const std::string& code = status.code();
  error(code.empty() ? std::move(fallback_code) : code, status.message(),
        std::move(where));
}

std::string Engine::render_text() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += to_string(d.severity);
    if (!d.code.empty()) out += "[" + d.code + "]";
    if (!d.where.empty()) out += " at " + d.where;
    out += ": " + d.message + "\n";
  }
  if (!diagnostics_.empty()) {
    out += std::to_string(error_count_) + " error(s), " +
           std::to_string(warning_count_) + " warning(s)\n";
  }
  return out;
}

std::string Engine::render_json() const {
  std::string out = "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i != 0) out += ",";
    out += "{\"code\":\"" + json_escape(d.code) + "\",\"severity\":\"" +
           std::string(to_string(d.severity)) + "\",\"message\":\"" +
           json_escape(d.message) + "\",\"where\":\"" + json_escape(d.where) +
           "\"}";
  }
  out += "],\"errors\":" + std::to_string(error_count_) +
         ",\"warnings\":" + std::to_string(warning_count_) + "}";
  return out;
}

std::string json_escape(std::string_view text) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace frodo::diag
