// SHA-256 (FIPS 180-4), self-contained.
//
// The batch compiler's analysis cache is content-addressed: the cache key is
// the digest of the canonical model XML plus everything else that feeds the
// range analysis (docs/BATCH.md).  A cryptographic digest keeps accidental
// key collisions out of the question without trusting file timestamps.
#pragma once

#include <string>
#include <string_view>

namespace frodo::support {

// Lowercase hex digest (64 characters) of `data`.
std::string sha256_hex(std::string_view data);

}  // namespace frodo::support
