// Lightweight error propagation used across the code generator.
//
// The generator is a batch tool: almost every failure (malformed model file,
// unknown block type, shape mismatch) is a user-input error that should be
// reported with context rather than thrown across module boundaries.  Status
// and Result<T> carry an error message chain; FRODO_ASSIGN_OR_RETURN keeps
// call sites terse.
//
// Errors are a chain of context nodes sharing their tail, so with_context()
// is O(length of the added context) — wrapping an error as it propagates up
// a deep call stack never re-copies the inner message.  An error may carry a
// stable diagnostic code ("FRODO-Exxx"); the innermost code in the chain is
// the root cause and wins.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace frodo {

class Status {
 public:
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(std::string message) {
    return error(std::string(), std::move(message));
  }
  // An error with a stable diagnostic code (see support/diag.hpp).
  static Status error(std::string code, std::string message) {
    Status s;
    s.node_ = std::make_shared<const Node>(
        Node{std::move(message), std::move(code), nullptr});
    return s;
  }

  bool is_ok() const { return node_ == nullptr; }
  explicit operator bool() const { return is_ok(); }

  // The full "outer: inner: root" message (lazily joined and cached).
  const std::string& message() const {
    static const std::string kOk = "OK";
    if (node_ == nullptr) return kOk;
    if (!rendered_) {
      std::string joined;
      for (const Node* n = node_.get(); n != nullptr; n = n->cause.get()) {
        if (!joined.empty()) joined += ": ";
        joined += n->text;
      }
      rendered_ = std::make_shared<const std::string>(std::move(joined));
    }
    return *rendered_;
  }

  // The innermost (root cause) diagnostic code; "" when none was attached.
  const std::string& code() const {
    static const std::string kNone;
    const std::string* found = &kNone;
    for (const Node* n = node_.get(); n != nullptr; n = n->cause.get()) {
      if (!n->code.empty()) found = &n->code;
    }
    return *found;
  }

  // Prepends context to the error message, e.g. "parsing model.xml: <err>".
  // O(1) in the length of the existing chain.
  Status with_context(std::string context) const {
    if (is_ok()) return *this;
    Status s;
    s.node_ = std::make_shared<const Node>(
        Node{std::move(context), std::string(), node_});
    return s;
  }

 private:
  struct Node {
    std::string text;
    std::string code;
    std::shared_ptr<const Node> cause;
  };

  std::shared_ptr<const Node> node_;
  mutable std::shared_ptr<const std::string> rendered_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : value_(std::move(status)) {
    // A Result constructed from a Status must carry an error; an OK status
    // without a value would be unrepresentable.
  }

  static Result<T> error(std::string message) {
    return Result<T>(Status::error(std::move(message)));
  }
  static Result<T> error(std::string code, std::string message) {
    return Result<T>(Status::error(std::move(code), std::move(message)));
  }

  bool is_ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(value_);
  }

  const std::string& message() const {
    static const std::string kOk = "OK";
    return is_ok() ? kOk : std::get<Status>(value_).message();
  }

  Result<T> with_context(const std::string& context) && {
    if (is_ok()) return std::move(*this);
    return Result<T>(status().with_context(context));
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace frodo

// Evaluates `expr` (a Result<T>); on error returns the error from the
// enclosing function, otherwise binds the value to `lhs`.  Uses __COUNTER__
// so multiple expansions are collision-free even on the same source line.
#define FRODO_ASSIGN_OR_RETURN(lhs, expr) \
  FRODO_ASSIGN_OR_RETURN_IMPL_(FRODO_CONCAT_(frodo_res_, __COUNTER__), lhs, \
                               expr)

#define FRODO_ASSIGN_OR_RETURN_IMPL_(res, lhs, expr) \
  auto res = (expr);                                 \
  if (!res.is_ok()) return res.status();             \
  lhs = std::move(res).value()

#define FRODO_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::frodo::Status frodo_status_ = (expr);          \
    if (!frodo_status_.is_ok()) return frodo_status_; \
  } while (false)

#define FRODO_CONCAT_(a, b) FRODO_CONCAT_IMPL_(a, b)
#define FRODO_CONCAT_IMPL_(a, b) a##b
