// Lightweight error propagation used across the code generator.
//
// The generator is a batch tool: almost every failure (malformed model file,
// unknown block type, shape mismatch) is a user-input error that should be
// reported with context rather than thrown across module boundaries.  Status
// and Result<T> carry an error message chain; FRODO_ASSIGN_OR_RETURN keeps
// call sites terse.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace frodo {

class Status {
 public:
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  bool is_ok() const { return !message_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const std::string& message() const {
    static const std::string kOk = "OK";
    return message_ ? *message_ : kOk;
  }

  // Prepends context to the error message, e.g. "parsing model.xml: <err>".
  Status with_context(const std::string& context) const {
    if (is_ok()) return *this;
    return error(context + ": " + *message_);
  }

 private:
  std::optional<std::string> message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : value_(std::move(status)) {
    // A Result constructed from a Status must carry an error; an OK status
    // without a value would be unrepresentable.
  }

  static Result<T> error(std::string message) {
    return Result<T>(Status::error(std::move(message)));
  }

  bool is_ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(value_);
  }

  const std::string& message() const {
    static const std::string kOk = "OK";
    return is_ok() ? kOk : std::get<Status>(value_).message();
  }

  Result<T> with_context(const std::string& context) && {
    if (is_ok()) return std::move(*this);
    return Result<T>(status().with_context(context));
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace frodo

// Evaluates `expr` (a Result<T>); on error returns the error from the
// enclosing function, otherwise binds the value to `lhs`.
#define FRODO_ASSIGN_OR_RETURN(lhs, expr)                   \
  auto FRODO_CONCAT_(res_, __LINE__) = (expr);              \
  if (!FRODO_CONCAT_(res_, __LINE__).is_ok())               \
    return FRODO_CONCAT_(res_, __LINE__).status();          \
  lhs = std::move(FRODO_CONCAT_(res_, __LINE__)).value()

#define FRODO_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::frodo::Status frodo_status_ = (expr);          \
    if (!frodo_status_.is_ok()) return frodo_status_; \
  } while (false)

#define FRODO_CONCAT_(a, b) FRODO_CONCAT_IMPL_(a, b)
#define FRODO_CONCAT_IMPL_(a, b) a##b
