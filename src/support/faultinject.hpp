// Deterministic fault injection.
//
// Every recovery path the fault-tolerance layer promises — cache misses on
// corrupt entries, degraded optimizer retries, structured crash/timeout/OOM
// records from isolated workers — is only trustworthy if it can be
// *exercised on demand*.  This harness instruments the failure-prone sites
// (allocation, cache read/write, output write, worker start, pass
// boundaries) with named probes:
//
//   if (faultinject::at("cache.write")) { /* behave as if the write failed */ }
//
// Armed from the environment (`FRODO_FAULT=<site>:<nth>[:<kind>][@<model>]`,
// comma-separated specs) or programmatically (tests), a probe fires at the
// nth hit of its site — once — and otherwise stays a single relaxed atomic
// load, so production runs pay nothing.
//
//   kind   effect at the firing site
//   -----  ------------------------------------------------------------
//   fail   at() returns true; the site takes its error path (default)
//   crash  abort() — a SIGABRT, as a real bug in the pass would produce
//   hang   spins until the installed CancelToken requests a stop, then
//          fires — `check()` reports the token's E910/E911 (a broken hang
//          *is* a timeout); with no token the spin is unbounded and the
//          process-isolation watchdog must kill it
//   oom    allocates until std::bad_alloc (bounded at 1 GiB so a
//          misconfigured run cannot take the host down); the exception
//          propagates out of at()
//
// `@<model>` restricts the spec to compiles whose installed context (the
// model path, see ScopedContext) contains the substring — that is how a
// batch test poisons exactly one model of ten.
//
// The site catalog is fixed at compile time (`registered_sites()`, surfaced
// by `frodoc --list-fault-sites`) so CI can sweep every site mechanically.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace frodo::support::faultinject {

// True when an armed fault fires at this site (see kinds above).  Arms
// lazily from FRODO_FAULT on first use; a single relaxed load when nothing
// is armed.
bool at(std::string_view site);

// Convenience for Status-returning sites: an error carrying `code` when the
// fault fires, OK otherwise.
Status check(std::string_view site, std::string_view code);

// Replaces the armed spec list; empty or unparsable specs disarm.  Format
// as in FRODO_FAULT.  Returns false (and disarms) on a spec naming an
// unregistered site or malformed fields.
bool arm(std::string_view specs);
void disarm();

// The compile-time site catalog, sorted.
const std::vector<std::string>& registered_sites();

// Installs `context` (the model path being compiled) as the calling
// thread's fault-filter subject for `@<model>` specs.
class ScopedContext {
 public:
  explicit ScopedContext(std::string context);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  std::string previous_;
};

}  // namespace frodo::support::faultinject
