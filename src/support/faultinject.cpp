#include "support/faultinject.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <thread>

#include "support/cancel.hpp"
#include "support/strings.hpp"

namespace frodo::support::faultinject {

namespace {

enum class Kind { kFail, kCrash, kHang, kOom };

struct Spec {
  std::string site;
  long long nth = 1;          // fire on the nth hit (1-based)
  Kind kind = Kind::kFail;
  std::string model_filter;   // substring of the installed context; empty = any
  long long hits = 0;         // hits matching this spec's site + filter
  bool fired = false;         // each spec fires at most once
};

struct State {
  std::mutex mu;
  std::vector<Spec> specs;  // guarded by mu
};

// `armed` is the fast-path gate: a single relaxed load on every at() call
// when nothing is armed.  The spec list behind it is mutex-guarded.
std::atomic<bool> g_armed{false};
State& state() {
  static State s;
  return s;
}

thread_local std::string t_context;

std::once_flag g_env_once;

bool parse_kind(std::string_view text, Kind* out) {
  if (text == "fail") *out = Kind::kFail;
  else if (text == "crash") *out = Kind::kCrash;
  else if (text == "hang") *out = Kind::kHang;
  else if (text == "oom") *out = Kind::kOom;
  else return false;
  return true;
}

// <site>:<nth>[:<kind>][@<model>]
bool parse_spec(std::string_view text, Spec* out) {
  const size_t at_pos = text.find('@');
  if (at_pos != std::string_view::npos) {
    out->model_filter = std::string(text.substr(at_pos + 1));
    if (out->model_filter.empty()) return false;
    text = text.substr(0, at_pos);
  }
  std::vector<std::string> fields = split(text, ':');
  if (fields.size() < 2 || fields.size() > 3) return false;
  out->site = fields[0];
  const auto& sites = registered_sites();
  if (!std::binary_search(sites.begin(), sites.end(), out->site)) return false;
  char* end = nullptr;
  out->nth = std::strtoll(fields[1].c_str(), &end, 10);
  if (end == fields[1].c_str() || *end != '\0' || out->nth < 1) return false;
  if (fields.size() == 3 && !parse_kind(fields[2], &out->kind)) return false;
  return true;
}

void ensure_armed_from_env() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("FRODO_FAULT");
    if (env != nullptr && *env != '\0') arm(env);
  });
}

// Allocates until std::bad_alloc, touching pages so the pressure is real
// under an rlimit, bounded at 1 GiB so an un-capped process survives the
// exercise.  On hitting the bound without an allocation failure the memory
// is released and bad_alloc thrown anyway: the *site* promised an OOM.
[[noreturn]] void inject_oom() {
  constexpr size_t kChunk = 16ull << 20;   // 16 MiB
  constexpr size_t kBound = 1ull << 30;    // 1 GiB
  std::vector<std::unique_ptr<char[]>> chunks;
  size_t total = 0;
  while (total < kBound) {
    std::unique_ptr<char[]> chunk(new char[kChunk]);
    for (size_t i = 0; i < kChunk; i += 4096) chunk[i] = 1;
    chunks.push_back(std::move(chunk));
    total += kChunk;
  }
  chunks.clear();
  throw std::bad_alloc();
}

// Spins until a stop is requested on the calling thread's CancelToken; with
// no token, spins forever (the process-isolation watchdog owns the kill).
void inject_hang() {
  for (;;) {
    CancelToken* token = cancel_current();
    if (token != nullptr && token->stop_requested()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace

const std::vector<std::string>& registered_sites() {
  // Sorted (parse_spec binary-searches it).  Adding a site here is all the
  // registration a probe needs; the CI sweep derives its matrix from
  // `frodoc --list-fault-sites`.
  static const std::vector<std::string> kSites = {
      "alloc.buffers",        // codegen buffer planning
      "cache.read",           // analysis-cache lookup
      "cache.write",          // analysis-cache store
      "output.write",         // emitted-source write
      "pass.emit",            // emission loop
      "pass.optimize.alias",  // alias-truncation planning
      "pass.optimize.fuse",   // loop-fusion planning
      "pass.optimize.shrink", // buffer-shrink planning
      "pass.range",           // range-analysis worklist
      "worker.start",         // isolated child startup
  };
  return kSites;
}

bool at(std::string_view site) {
  ensure_armed_from_env();
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  Kind kind;
  {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    Spec* firing = nullptr;
    for (Spec& spec : s.specs) {
      if (spec.site != site) continue;
      if (!spec.model_filter.empty() &&
          t_context.find(spec.model_filter) == std::string::npos)
        continue;
      ++spec.hits;
      if (!spec.fired && spec.hits == spec.nth) {
        spec.fired = true;
        firing = &spec;
      }
    }
    if (firing == nullptr) return false;
    kind = firing->kind;
  }
  // Effects run outside the lock: hang and oom take arbitrarily long, and
  // other threads must keep passing through their own probes meanwhile.
  switch (kind) {
    case Kind::kFail:
      return true;
    case Kind::kCrash:
      std::abort();
    case Kind::kHang:
      inject_hang();
      return true;
    case Kind::kOom:
      inject_oom();
  }
  return true;
}

Status check(std::string_view site, std::string_view code) {
  if (!at(site)) return Status::ok();
  // A hang broken by the deadline (or an explicit cancel) is a timeout, not
  // a pass bug: report the token's E910/E911 so the batch driver classifies
  // the record as the fault kind actually simulated.
  CancelToken* token = cancel_current();
  if (token != nullptr && token->stop_requested())
    return token->status().with_context("injected fault at site '" +
                                        std::string(site) + "'");
  return Status::error(std::string(code),
                       "injected fault at site '" + std::string(site) + "'");
}

bool arm(std::string_view specs) {
  std::vector<Spec> parsed;
  for (const std::string& field : split(specs, ',')) {
    std::string trimmed(trim(field));
    if (trimmed.empty()) continue;
    Spec spec;
    if (!parse_spec(trimmed, &spec)) {
      disarm();
      return false;
    }
    parsed.push_back(std::move(spec));
  }
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.specs = std::move(parsed);
  g_armed.store(!s.specs.empty(), std::memory_order_relaxed);
  return true;
}

void disarm() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.specs.clear();
  g_armed.store(false, std::memory_order_relaxed);
}

ScopedContext::ScopedContext(std::string context)
    : previous_(std::move(t_context)) {
  t_context = std::move(context);
}

ScopedContext::~ScopedContext() { t_context = std::move(previous_); }

}  // namespace frodo::support::faultinject
