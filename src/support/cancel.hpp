// Cooperative cancellation and deadline tokens.
//
// A CancelToken carries a "stop now" request — an explicit cancel() from a
// caller (a batch abort, a service shutting down) or a wall-clock deadline
// (`frodoc --batch --timeout-per-model`).  The long-running passes — range
// analysis worklists, optimization planning, snippet emission — poll the
// token at loop boundaries and unwind with a structured Status
// (FRODO-E910 cancelled / FRODO-E911 deadline) instead of running to
// completion; the batch driver turns that Status into a per-model failure
// record and moves on to the next model.
//
// Like trace::Tracer, the token is *installed* thread-locally rather than
// threaded through every pass signature: library loops call
// `support::cancel_poll()` unconditionally, which is a single relaxed load
// when no token is installed.  The helpers that fan work out to pool workers
// (range partitioning, parallel emission, the batch loop itself) re-install
// the calling thread's token inside the worker body, so cancellation follows
// the work onto the pool.
//
// Cooperative polling bounds *well-behaved* compiles.  Code that never
// returns to a poll point (a wedged third-party call, a pathological libc
// allocation) is out of reach by design — that is what
// `--isolate=process` is for (batch/isolate.hpp): the child is killed with
// a signal and the parent synthesizes the same structured record.
#pragma once

#include <atomic>
#include <chrono>

#include "support/status.hpp"

namespace frodo::support {

class CancelToken {
 public:
  // All deadline arithmetic is pinned to the monotonic clock.  A long-lived
  // daemon outlives NTP steps and manual clock adjustments; a system_clock
  // deadline would fire early or never across such a jump.  Tests
  // static_assert on this alias (tests/daemon_test.cpp).
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady, "deadlines must use a monotonic clock");

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests cooperative cancellation; safe from any thread, sticky.
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  // Arms a deadline `timeout_ms` from now on the monotonic clock (<= 0
  // disarms).
  void set_timeout_ms(long long timeout_ms) {
    if (timeout_ms <= 0) {
      has_deadline_.store(false, std::memory_order_release);
      return;
    }
    deadline_ = Clock::now() + std::chrono::milliseconds(timeout_ms);
    expired_.store(false, std::memory_order_release);
    has_deadline_.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  // True once the armed deadline has passed.  The first expiring check
  // latches the flag, so later polls skip the clock read.
  bool expired() const {
    if (!has_deadline_.load(std::memory_order_acquire)) return false;
    if (expired_.load(std::memory_order_acquire)) return true;
    if (Clock::now() < deadline_) return false;
    expired_.store(true, std::memory_order_release);
    return true;
  }

  bool stop_requested() const { return cancelled() || expired(); }

  // OK while running is allowed; otherwise the structured reason
  // (FRODO-E910 cancelled, FRODO-E911 deadline exceeded).
  Status status() const;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  mutable std::atomic<bool> expired_{false};
  Clock::time_point deadline_{};
};

// Installs `token` as the calling thread's cancellation source (nullptr
// disarms); returns the previously installed token so callers can restore
// it.  Mirrors trace::install.
CancelToken* cancel_install(CancelToken* token);
CancelToken* cancel_current();

// RAII installation for scopes that fan out to pool workers.
class CancelScope {
 public:
  explicit CancelScope(CancelToken* token)
      : previous_(cancel_install(token)) {}
  ~CancelScope() { cancel_install(previous_); }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelToken* previous_;
};

// The poll called from pass loops: OK when no token is installed or no stop
// was requested.  Deadline checks (a clock read) run on the first call and
// then every 64th, so a tight worklist pays one relaxed load + a counter
// bump per iteration.
Status cancel_poll();

}  // namespace frodo::support
