// Work-stealing thread pool shared by the batch compiler, the intra-model
// parallel passes and the fuzz campaign.
//
// Design notes:
//   * Each worker owns a deque; it pops its own work LIFO (cache-warm) and
//     steals FIFO from the other workers when its deque runs dry.
//   * `parallel_for` never parks the calling thread behind queued work: the
//     caller claims iteration indices from a shared atomic alongside the
//     enqueued runner tasks and only sleeps once every index is *finished*.
//     A runner that is still sitting in a queue when the loop completes wakes
//     up, finds no indices left, and exits — so nested parallel_for calls
//     (batch compile -> per-model emission) cannot deadlock even on a pool
//     with zero workers.
//   * A pool with zero workers is valid and runs everything inline on the
//     caller; `frodoc --jobs 1` uses exactly this to stay byte-for-byte the
//     serial tool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace frodo::support {

class ThreadPool {
 public:
  // Spawns `workers` threads (clamped at 0 below).  A batch run with
  // `--jobs N` uses N-1 workers: the caller participates in every
  // parallel_for, so exactly N threads compile concurrently.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(threads_.size()); }

  // Enqueues a fire-and-forget task.  Tasks enqueued from a worker go to
  // that worker's own deque; external threads distribute round-robin.
  void run(std::function<void()> task);

  // Invokes body(0) .. body(n-1), possibly concurrently, and returns when
  // every call has finished.  The calling thread participates, so this works
  // (serially) even with zero workers, and may be nested freely.  Iteration
  // order is unspecified; `body` must be safe to call concurrently from
  // different threads for different indices.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_main(std::size_t self);
  bool try_acquire(std::size_t self, std::function<void()>* task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::atomic<std::size_t> round_robin_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace frodo::support
