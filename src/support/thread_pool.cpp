#include "support/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace frodo::support {

namespace {

// Index of the pool worker the current thread is, or npos on external
// threads.  Set once at worker startup; used to route run() to the caller's
// own deque.
thread_local std::size_t t_worker_index = static_cast<std::size_t>(-1);

}  // namespace

ThreadPool::ThreadPool(int workers) {
  const std::size_t n = workers < 0 ? 0 : static_cast<std::size_t>(workers);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    queues_.push_back(std::make_unique<Queue>());
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run(std::function<void()> task) {
  if (queues_.empty()) {
    // No workers: run() degenerates to a direct call, which keeps single-job
    // batch runs strictly serial.
    task();
    return;
  }
  std::size_t target = t_worker_index;
  if (target >= queues_.size())
    target = round_robin_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::try_acquire(std::size_t self, std::function<void()>* task) {
  // Own deque first (LIFO: the most recently pushed work is cache-warm)...
  {
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      *task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // ...then steal the oldest task from any other worker.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Queue& q = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      *task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_main(std::size_t self) {
  t_worker_index = self;
  std::function<void()> task;
  for (;;) {
    if (try_acquire(self, &task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_.load(std::memory_order_acquire)) break;
    // Re-check under the wake lock: run() notifies after pushing, so a task
    // pushed between our scan and this wait is caught by the timeout.
    wake_.wait_for(lock, std::chrono::milliseconds(10));
  }
  // Drain anything still queued so run() tasks are never silently dropped.
  while (try_acquire(self, &task)) {
    task();
    task = nullptr;
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (queues_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct Loop {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::size_t total = 0;
    std::mutex mutex;
    std::condition_variable done;
  };
  auto loop = std::make_shared<Loop>();
  loop->total = n;

  auto finish_one = [](const std::shared_ptr<Loop>& l) {
    if (l->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        l->total) {
      // Empty critical section pairs with the caller's wait so the final
      // notification cannot be lost between predicate check and sleep.
      std::lock_guard<std::mutex> lock(l->mutex);
      l->done.notify_all();
    }
  };

  // Runners copy `body` (a straggler may outlive this frame; it then finds
  // no index left and never invokes its copy).
  const std::size_t runners =
      std::min(queues_.size(), n - 1);
  for (std::size_t r = 0; r < runners; ++r) {
    run([loop, body, finish_one] {
      for (;;) {
        const std::size_t i =
            loop->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= loop->total) return;
        body(i);
        finish_one(loop);
      }
    });
  }

  // The caller claims indices too — queued runners that never start cannot
  // strand any iteration.
  for (;;) {
    const std::size_t i = loop->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= loop->total) break;
    body(i);
    finish_one(loop);
  }
  std::unique_lock<std::mutex> lock(loop->mutex);
  loop->done.wait(lock, [&] {
    return loop->completed.load(std::memory_order_acquire) == loop->total;
  });
}

}  // namespace frodo::support
