#include "support/cancel.hpp"

#include "support/diag.hpp"

namespace frodo::support {

namespace {

thread_local CancelToken* t_token = nullptr;
thread_local unsigned t_poll_counter = 0;

}  // namespace

Status CancelToken::status() const {
  if (cancelled())
    return Status::error(std::string(diag::codes::kCancelled),
                         "compilation cancelled");
  if (expired())
    return Status::error(std::string(diag::codes::kDeadline),
                         "per-model deadline exceeded");
  return Status::ok();
}

CancelToken* cancel_install(CancelToken* token) {
  CancelToken* previous = t_token;
  t_token = token;
  t_poll_counter = 0;
  return previous;
}

CancelToken* cancel_current() { return t_token; }

Status cancel_poll() {
  CancelToken* token = t_token;
  if (token == nullptr) return Status::ok();
  if (token->cancelled())
    return Status::error(std::string(diag::codes::kCancelled),
                         "compilation cancelled");
  // The deadline check reads the clock; stride it so tight loops stay cheap.
  if ((t_poll_counter++ & 63u) == 0 && token->expired())
    return Status::error(std::string(diag::codes::kDeadline),
                         "per-model deadline exceeded");
  return Status::ok();
}

}  // namespace frodo::support
