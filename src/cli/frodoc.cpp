// frodoc — the command-line code generator.
//
//   frodoc MODEL.(slxz|xml) [options]
//
// Options:
//   --generator NAME   frodo (default) | frodo-loose | simulink | dfsynth |
//                      hcg
//   --out DIR          output directory (default: current directory)
//   --emit-main        also write a standalone demo main.c
//   --print-ranges     dump the calculation ranges (Algorithm 1) and exit
//   --check            validate the model (structure, types, shapes) and exit
//   --simd-width N     HCG vector width in doubles (default 4)
//   --list-blocks      print the supported block types and exit
//   --help             this text
//
// Writes <Model>.c and <Model>.h into the output directory.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "blocks/analysis.hpp"
#include "codegen/generator.hpp"
#include "graph/graph.hpp"
#include "model/flatten.hpp"
#include "range/range_analysis.hpp"
#include "slx/slx.hpp"
#include "support/strings.hpp"
#include "zip/zip.hpp"

namespace {

int usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: frodoc MODEL.(slxz|xml) [--generator NAME] "
               "[--out DIR] [--emit-main] [--print-ranges] [--check] "
               "[--simd-width N] [--list-blocks]\n");
  return code;
}

int list_blocks() {
  std::printf("supported block types:\n");
  for (const std::string& type : frodo::blocks::registered_types())
    std::printf("  %s\n", type.c_str());
  return 0;
}

int check_model(const frodo::model::Model& m) {
  auto flat = frodo::model::flatten(m);
  if (!flat.is_ok()) {
    std::fprintf(stderr, "frodoc: %s\n", flat.message().c_str());
    return 1;
  }
  auto graph = frodo::graph::DataflowGraph::build(flat.value());
  if (!graph.is_ok()) {
    std::fprintf(stderr, "frodoc: %s\n", graph.message().c_str());
    return 1;
  }
  auto analysis = frodo::blocks::analyze(graph.value());
  if (!analysis.is_ok()) {
    std::fprintf(stderr, "frodoc: %s\n", analysis.message().c_str());
    return 1;
  }
  auto sig = frodo::blocks::io_signature(analysis.value());
  if (!sig.is_ok()) {
    std::fprintf(stderr, "frodoc: %s\n", sig.message().c_str());
    return 1;
  }
  std::printf("%s: OK (%d blocks, %zu inputs, %zu outputs)\n",
              m.name().c_str(), flat.value().block_count(),
              sig.value().inputs.size(), sig.value().outputs.size());
  return 0;
}

int print_ranges(const frodo::model::Model& m) {
  auto flat = frodo::model::flatten(m);
  if (!flat.is_ok()) {
    std::fprintf(stderr, "frodoc: %s\n", flat.message().c_str());
    return 1;
  }
  auto graph = frodo::graph::DataflowGraph::build(flat.value());
  if (!graph.is_ok()) {
    std::fprintf(stderr, "frodoc: %s\n", graph.message().c_str());
    return 1;
  }
  auto analysis = frodo::blocks::analyze(graph.value());
  if (!analysis.is_ok()) {
    std::fprintf(stderr, "frodoc: %s\n", analysis.message().c_str());
    return 1;
  }
  auto ranges = frodo::range::determine_ranges(analysis.value());
  if (!ranges.is_ok()) {
    std::fprintf(stderr, "frodoc: %s\n", ranges.message().c_str());
    return 1;
  }
  std::printf("%s", ranges.value().to_string(analysis.value()).c_str());
  std::printf("eliminated elements: %lld\n",
              ranges.value().eliminated_elements(analysis.value()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_path;
  std::string generator_name = "frodo";
  std::string outdir = ".";
  bool emit_main = false;
  bool want_ranges = false;
  bool want_check = false;
  int simd_width = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--list-blocks") return list_blocks();
    if (arg == "--generator") {
      const char* v = next();
      if (v == nullptr) return usage(2);
      generator_name = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(2);
      outdir = v;
    } else if (arg == "--simd-width") {
      const char* v = next();
      long long n = 0;
      if (v == nullptr || !frodo::parse_int(v, &n) || n < 1) return usage(2);
      simd_width = static_cast<int>(n);
    } else if (arg == "--emit-main") {
      emit_main = true;
    } else if (arg == "--print-ranges") {
      want_ranges = true;
    } else if (arg == "--check") {
      want_check = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "frodoc: unknown option '%s'\n", arg.c_str());
      return usage(2);
    } else if (model_path.empty()) {
      model_path = arg;
    } else {
      return usage(2);
    }
  }
  if (model_path.empty()) return usage(2);

  auto model = frodo::slx::load(model_path);
  if (!model.is_ok()) {
    std::fprintf(stderr, "frodoc: cannot load '%s': %s\n",
                 model_path.c_str(), model.message().c_str());
    return 1;
  }

  if (want_check) return check_model(model.value());
  if (want_ranges) return print_ranges(model.value());

  auto generator = frodo::codegen::make_generator(generator_name, simd_width);
  if (!generator.is_ok()) {
    std::fprintf(stderr, "frodoc: %s\n", generator.message().c_str());
    return 2;
  }

  auto code = generator.value()->generate(model.value());
  if (!code.is_ok()) {
    std::fprintf(stderr, "frodoc: code generation failed: %s\n",
                 code.message().c_str());
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(outdir, ec);
  const std::string base = outdir + "/" + code.value().prefix;
  const std::pair<std::string, std::string> parts[] = {
      {base + ".c", code.value().source},
      {base + ".h", code.value().header}};
  for (const auto& [path, text] : parts) {
    auto status = frodo::zip::write_file(path, text);
    if (!status.is_ok()) {
      std::fprintf(stderr, "frodoc: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  if (emit_main) {
    const std::string main_path = outdir + "/main.c";
    auto status = frodo::zip::write_file(
        main_path, frodo::codegen::emit_demo_main(code.value()));
    if (!status.is_ok()) {
      std::fprintf(stderr, "frodoc: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("wrote %s\n", main_path.c_str());
  }
  std::printf("%s: %d lines, %lld static doubles (%s)\n",
              code.value().model_name.c_str(), code.value().source_lines,
              code.value().static_doubles, code.value().generator.c_str());
  return 0;
}
