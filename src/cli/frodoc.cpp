// frodoc — the command-line code generator.
//
//   frodoc MODEL.(slxz|xml) [options]
//   frodoc --batch INPUT... [options]
//
// Options:
//   --generator NAME   frodo (default) | frodo-noopt | frodo-loose |
//                      frodo-shared | simulink | dfsynth | hcg
//   --out DIR          output directory (default: current directory)
//   --emit-main        also write a standalone demo main.c
//   --[no-]fuse               elementwise loop fusion (frodo; default on)
//   --[no-]shrink-buffers     range-hull buffer shrinking (frodo; default on)
//   --[no-]alias-truncation   zero-copy slice aliases (frodo; default on)
//   --cost-model MODE  off | static (default) | tuned — how candidates inside
//                      the enabled passes are admitted (docs/COSTMODEL.md):
//                      off applies everything (the pre-cost-model behavior),
//                      static vetoes unprofitable candidates per block,
//                      tuned replays autotuned per-block decisions from the
//                      analysis cache (FRODO-W007 + static fallback when
//                      none are cached)
//   --autotune         with --cost-model tuned (implied): measure candidate
//                      plans with a real C compiler on a tuned-entry cache
//                      miss and persist the winner (needs --cache-dir to
//                      survive the run; not with --isolate process)
//   --autotune-reps N  timed steps per autotune measurement (default 200)
//   --autotune-rounds N  best-of rounds per candidate (default 3)
//   --batch            compile many models in one run; each INPUT is a model
//                      file, a directory of models, or a manifest listing one
//                      model path per line (docs/BATCH.md)
//   --jobs N           concurrent compiles / intra-model workers (default 1;
//                      output is byte-identical for every N)
//   --cache-dir DIR    content-addressed analysis cache: reuse Algorithm 1
//                      results across runs keyed by model + library + flags
//   --no-cache         ignore --cache-dir (scripting convenience)
//   --timeout-per-model MS   per-model wall-clock budget; an overrunning
//                      compile unwinds with FRODO-E911 (docs/ROBUSTNESS.md)
//   --isolate MODE     none (default) | process — with --batch, compile each
//                      model in a sandboxed child so crashes / hangs / OOMs
//                      become structured FRODO-E91x records
//   --memory-per-model MB    address-space rlimit per isolated child
//   --retries N        retry crashed / timed-out / OOMed isolated compiles
//                      up to N times (default 0)
//   --retry-backoff MS exponential backoff base between retries (default 100)
//   --list-fault-sites print the registered fault-injection sites (see
//                      FRODO_FAULT in docs/ROBUSTNESS.md) and exit
//   --connect SOCK     forward the compile to a running frodod daemon at
//                      SOCK and render its results as if compiled locally
//                      (docs/DAEMON.md)
//   --priority P       normal (default) | high — the daemon queue class of
//                      a forwarded compile (with --connect)
//   --daemon-verb V    metrics | health | shutdown — query or stop the
//                      daemon instead of compiling (with --connect);
//                      metrics prints the Prometheus exposition on stdout
//   --print-ranges     dump the calculation ranges (Algorithm 1); composes
//                      with --report (ranges first, then the report), then
//                      exits without generating code
//   --report FMT       text | json — redundancy-elimination report on stdout
//                      (per-block full vs demanded sizes, optimizer passes,
//                      model totals; see docs/OBSERVABILITY.md)
//   --trace-out FILE   write a Chrome trace_event JSON of the pipeline
//                      phases (load in chrome://tracing or Perfetto)
//   --metrics-out FILE write the labeled telemetry registry as Prometheus
//                      text exposition to FILE and as a schema-versioned
//                      JSON snapshot (with batch rollups) to FILE.json
//   --events-out FILE  write the per-model compile ledger (one JSONL
//                      "frodo.event/1" record per model, in batch order)
//   --profile-hooks    emit FRODO_PROFILE-guarded per-block counters and a
//                      <model>_profile_dump() into the generated code
//   -v, --verbose      print per-phase wall times and pipeline counters to
//                      stderr
//   --check            validate the model (structure, types, shapes) and exit
//   --strict           treat degradable problems (unknown block types) as
//                      errors instead of warnings
//   --max-errors N     stop collecting after N errors (default 20)
//   --diag-format FMT  text (default) | json — diagnostics go to stderr
//   --simd-width N     HCG vector width in doubles (default 4)
//   --list-blocks      print the supported block types and exit
//   --version          print the frodoc build identification and exit
//   --help             this text
//
// Exit codes: 0 = success, 1 = the input has diagnosable problems,
// 2 = usage error or internal/environment failure.  A batch run exits with
// the worst per-model code.
//
// Writes <Model>.c and <Model>.h into the output directory.
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "batch/batch.hpp"
#include "daemon/client.hpp"
#include "daemon/protocol.hpp"
#include "blocks/analysis.hpp"
#include "blocks/semantics.hpp"
#include "codegen/generator.hpp"
#include "codegen/report.hpp"
#include "range/range_analysis.hpp"
#include "slx/slx.hpp"
#include "support/cancel.hpp"
#include "support/diag.hpp"
#include "support/faultinject.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "support/version.hpp"
#include "zip/zip.hpp"

namespace {

namespace diag = frodo::diag;

int usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: frodoc MODEL.(slxz|xml) [--generator NAME] "
               "[--out DIR] [--emit-main] [--[no-]fuse] "
               "[--[no-]shrink-buffers] [--[no-]alias-truncation] "
               "[--cost-model off|static|tuned] [--autotune] "
               "[--autotune-reps N] [--autotune-rounds N] "
               "[--batch] [--jobs N] [--cache-dir DIR] [--no-cache] "
               "[--timeout-per-model MS] [--isolate none|process] "
               "[--memory-per-model MB] [--retries N] [--retry-backoff MS] "
               "[--list-fault-sites] "
               "[--connect SOCK] [--priority normal|high] "
               "[--daemon-verb metrics|health|shutdown] "
               "[--print-ranges] [--report text|json] [--trace-out FILE] "
               "[--metrics-out FILE] [--events-out FILE] "
               "[--profile-hooks] [-v|--verbose] [--check] "
               "[--strict] [--max-errors N] [--diag-format text|json] "
               "[--simd-width N] [--list-blocks] [--version]\n");
  return code;
}

int list_blocks() {
  std::printf("supported block types:\n");
  for (const std::string& type : frodo::blocks::registered_types())
    std::printf("  %s\n", type.c_str());
  return 0;
}

int list_fault_sites() {
  std::printf("registered fault-injection sites (FRODO_FAULT="
              "<site>:<nth>[:<kind>][@<model>]):\n");
  for (const std::string& site :
       frodo::support::faultinject::registered_sites())
    std::printf("  %s\n", site.c_str());
  return 0;
}

// Diagnostics always go to stderr so stdout stays parseable; JSON is
// rendered even when empty (stable shape for tooling).
void flush_diagnostics(const diag::Engine& engine, const std::string& format) {
  if (format == "json") {
    std::fprintf(stderr, "%s\n", engine.render_json().c_str());
    return;
  }
  const std::string text = engine.render_text();
  if (!text.empty()) std::fprintf(stderr, "%s", text.c_str());
}

// Per-model batch diagnostics: text gets a "== path ==" header per model
// that produced any; JSON gets one document per model (JSON-lines), each
// tagged with the input path.  Always in batch (manifest) order.
void flush_batch_diagnostics(const frodo::batch::BatchResult& result,
                             const std::string& format) {
  for (const frodo::batch::ModelOutcome& outcome : result.models) {
    if (format == "json") {
      const std::string doc = outcome.engine.render_json();
      std::fprintf(stderr, "{\"model\": \"%s\", %s\n",
                   diag::json_escape(outcome.input_path).c_str(),
                   doc.c_str() + 1);
      continue;
    }
    const std::string text = outcome.engine.render_text();
    if (!text.empty())
      std::fprintf(stderr, "== %s ==\n%s", outcome.input_path.c_str(),
                   text.c_str());
  }
}

frodo::diag::Severity severity_from(const std::string& text) {
  if (text == "warning") return frodo::diag::Severity::kWarning;
  if (text == "note") return frodo::diag::Severity::kNote;
  return frodo::diag::Severity::kError;
}

// frodoc --connect: forward one compile (or a --daemon-verb query) to a
// running frodod and render the structured response the way a local run
// would have — "wrote" lines and the summary on stdout, diagnostics on
// stderr in the requested --diag-format, the daemon's exit code as ours.
int run_daemon_client(const std::string& socket, const std::string& verb,
                      frodo::daemon::CompileRequest req,
                      const std::vector<std::string>& inputs) {
  frodo::daemon::Request request;
  request.id = static_cast<long long>(::getpid());
  if (!verb.empty()) {
    request.verb = verb;
  } else {
    request.verb = "compile";
    if (req.batch || req.check || req.print_ranges || req.emit_main ||
        !req.trace_out.empty() || !req.metrics_out.empty() ||
        !req.events_out.empty() || !req.cache_dir.empty() ||
        req.isolate != "none" || req.retries > 0 ||
        req.memory_per_model_mb > 0 || req.jobs != 1 || req.verbose) {
      std::fprintf(
          stderr,
          "frodoc: --connect forwards a single compile; --batch, --check, "
          "--print-ranges, --emit-main, --trace-out, --metrics-out, "
          "--events-out, --verbose and the daemon-side resources "
          "(--cache-dir, --jobs, --isolate, --retries, --memory-per-model) "
          "do not compose with it\n");
      return 2;
    }
    if (inputs.size() != 1) {
      std::fprintf(stderr, "frodoc: --connect expects exactly one MODEL\n");
      return 2;
    }
    // The daemon resolves paths against its own working directory — ship
    // absolute ones.
    std::error_code ec;
    request.model = std::filesystem::absolute(inputs[0], ec).string();
    req.outdir = std::filesystem::absolute(req.outdir, ec).string();
    request.options = std::move(req);
  }

  auto response = frodo::daemon::roundtrip(
      socket, frodo::daemon::encode_request(request));
  if (!response.is_ok()) {
    std::fprintf(stderr, "frodoc: %s\n", response.message().c_str());
    return 2;
  }
  auto parsed = frodo::json::parse(response.value());
  if (!parsed.is_ok() || !parsed.value().is_object()) {
    std::fprintf(stderr, "frodoc: malformed daemon response: %s\n",
                 response.value().c_str());
    return 2;
  }
  const frodo::json::Value& resp = parsed.value();
  const auto number_field = [&](const char* key, long long fallback) {
    const frodo::json::Value* v = resp.find(key);
    return v != nullptr && v->is_number() ? static_cast<long long>(v->number)
                                          : fallback;
  };

  // Protocol-level failure (FRODO-E92x: busy daemon, malformed request):
  // surface the daemon's structured code and message.
  if (const frodo::json::Value* err = resp.find("error"); err != nullptr) {
    const frodo::json::Value* code = err->find("code");
    const frodo::json::Value* message = err->find("message");
    std::fprintf(stderr, "frodoc: daemon error [%s]: %s\n",
                 code != nullptr ? code->string.c_str() : "?",
                 message != nullptr ? message->string.c_str() : "?");
    return static_cast<int>(number_field("exit_code", 2));
  }

  if (request.verb == "metrics") {
    const frodo::json::Value* prom = resp.find("prometheus");
    if (prom != nullptr && prom->is_string())
      std::fputs(prom->string.c_str(), stdout);
    return 0;
  }
  if (request.verb == "health" || request.verb == "shutdown") {
    std::printf("%s\n", response.value().c_str());
    return 0;
  }

  if (const frodo::json::Value* written = resp.find("written");
      written != nullptr && written->is_array()) {
    for (const frodo::json::Value& path : written->items)
      if (path.is_string()) std::printf("wrote %s\n", path.string.c_str());
  }
  const int exit_code = static_cast<int>(number_field("exit_code", 2));
  if (exit_code == 0) {
    const frodo::json::Value* model = resp.find("model");
    const frodo::json::Value* gen = resp.find("generator_name");
    std::printf("%s: %lld lines, %lld static doubles (%s)\n",
                model != nullptr ? model->string.c_str() : "?",
                number_field("lines", 0), number_field("static_doubles", 0),
                gen != nullptr ? gen->string.c_str() : "?");
  }
  if (const frodo::json::Value* report = resp.find("report");
      report != nullptr && report->is_string())
    std::fputs(report->string.c_str(), stdout);

  // Re-render the daemon's structured diagnostics locally so a forwarded
  // compile reads exactly like a local one.
  frodo::diag::Engine engine(request.options.max_errors);
  if (const frodo::json::Value* diags = resp.find("diagnostics");
      diags != nullptr && diags->is_array()) {
    for (const frodo::json::Value& d : diags->items) {
      if (!d.is_object()) continue;
      frodo::diag::Diagnostic diagnostic;
      if (const auto* code = d.find("code"); code != nullptr)
        diagnostic.code = code->string;
      if (const auto* severity = d.find("severity"); severity != nullptr)
        diagnostic.severity = severity_from(severity->string);
      if (const auto* message = d.find("message"); message != nullptr)
        diagnostic.message = message->string;
      if (const auto* where = d.find("where"); where != nullptr)
        diagnostic.where = where->string;
      engine.report(std::move(diagnostic));
    }
  }
  if (engine.error_count() > 0 || engine.warning_count() > 0 ||
      request.options.diag_format == "json")
    flush_diagnostics(engine, request.options.diag_format);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  // One option vocabulary, shared with the frodod wire protocol
  // (daemon/request.hpp): argv tokens and request "options" members parse
  // through the same set_option with the same validation and messages.
  frodo::daemon::CompileRequest req;
  std::string connect_socket;  // --connect: forward to a daemon
  std::string daemon_verb;     // --daemon-verb: query/stop it instead

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // Accept both "--opt value" and "--opt=value".
    std::string inline_value;
    bool has_inline_value = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        has_inline_value = true;
        arg = arg.substr(0, eq);
      }
    }
    auto value = [&]() -> const char* {
      return has_inline_value ? inline_value.c_str() : next();
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--list-blocks") return list_blocks();
    if (arg == "--list-fault-sites") return list_fault_sites();
    if (arg == "--version") {
      std::printf("%s\n", frodo::version_string());
      return 0;
    }
    if (arg == "--verbose" || arg == "-v") {
      req.verbose = true;
      continue;
    }
    if (arg == "--connect") {
      const char* v = value();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "frodoc: --connect expects a socket path\n");
        return usage(2);
      }
      connect_socket = v;
      continue;
    }
    if (arg == "--daemon-verb") {
      const char* v = value();
      if (v == nullptr || (std::strcmp(v, "metrics") != 0 &&
                           std::strcmp(v, "health") != 0 &&
                           std::strcmp(v, "shutdown") != 0)) {
        std::fprintf(stderr,
                     "frodoc: --daemon-verb expects 'metrics', 'health' or "
                     "'shutdown'\n");
        return usage(2);
      }
      daemon_verb = v;
      continue;
    }
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const std::string name = arg.substr(2);
      const char* v = "";
      if (frodo::daemon::option_takes_value(name)) {
        v = value();
        if (v == nullptr) {
          std::fprintf(stderr, "frodoc: %s expects a value\n", arg.c_str());
          return usage(2);
        }
      }
      std::string error;
      switch (frodo::daemon::set_option(req, name, v, &error)) {
        case frodo::daemon::OptionStatus::kHandled:
          continue;
        case frodo::daemon::OptionStatus::kError:
          std::fprintf(stderr, "frodoc: %s\n", error.c_str());
          return usage(2);
        case frodo::daemon::OptionStatus::kUnknown:
          break;
      }
      std::fprintf(stderr, "frodoc: unknown option '%s'\n", arg.c_str());
      return usage(2);
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "frodoc: unknown option '%s'\n", arg.c_str());
      return usage(2);
    }
    inputs.push_back(arg);
  }
  if (inputs.empty() && daemon_verb.empty()) return usage(2);
  {
    std::string error;
    if (!frodo::daemon::finalize_request(req, &error)) {
      std::fprintf(stderr, "frodoc: %s\n", error.c_str());
      return usage(2);
    }
  }

  // --connect: this invocation is a thin client of a running frodod.
  if (!connect_socket.empty() || !daemon_verb.empty()) {
    if (connect_socket.empty()) {
      std::fprintf(stderr, "frodoc: --daemon-verb requires --connect\n");
      return usage(2);
    }
    return run_daemon_client(connect_socket, daemon_verb, std::move(req),
                             inputs);
  }

  // Local compile: bind the request's fields to the names the pipeline
  // below uses.
  const std::string& generator_name = req.generator;
  const std::string& outdir = req.outdir;
  const std::string& diag_format = req.diag_format;
  const std::string& report_format = req.report_format;
  const std::string& trace_out = req.trace_out;
  const std::string& metrics_out = req.metrics_out;
  const std::string& events_out = req.events_out;
  const std::string& cache_dir = req.cache_dir;
  const std::string& isolate = req.isolate;
  const frodo::codegen::OptimizeOptions& optimize = req.optimize;
  const bool batch_mode = req.batch;
  const bool verbose = req.verbose;
  const bool profile_hooks = req.profile_hooks;
  const bool emit_main = req.emit_main;
  const bool want_ranges = req.print_ranges;
  const bool want_check = req.check;
  const bool strict = req.strict;
  const int jobs = req.jobs;
  const int simd_width = req.simd_width;
  const int max_errors = req.max_errors;
  const long long timeout_per_model_ms = req.timeout_per_model_ms;
  const bool autotune = req.autotune;
  const int autotune_reps = req.autotune_reps;
  const int autotune_rounds = req.autotune_rounds;

  frodo::diag::Engine engine(max_errors);

  // Extra positionals without --batch would silently compile only the first
  // model — reject them up front (FRODO-E903).
  if (!batch_mode && inputs.size() > 1) {
    for (std::size_t i = 1; i < inputs.size(); ++i)
      engine.error(diag::codes::kUsageExtraInput,
                   "unexpected extra input '" + inputs[i] +
                       "' (pass --batch to compile several models)",
                   inputs[i]);
    flush_diagnostics(engine, diag_format);
    return 2;
  }

  const bool cache_enabled = req.cache_enabled();

  // The tracer must be installed before slx::load so the "parse" span is
  // captured; the epilogue below uninstalls it, writes --trace-out, and
  // prints the -v summary.  In batch mode each model compiles under its own
  // tracer; those are absorbed into this one afterwards.
  frodo::trace::Tracer tracer;
  // RAII installation (uninstalled by the epilogue's reset(); restores the
  // previous sink on every path, including exceptional unwinds).
  std::optional<frodo::trace::InstallScope> trace_scope;
  // Telemetry sinks (docs/OBSERVABILITY.md, "Metrics & event ledger").  The
  // single-model path needs the tracer installed to extract per-phase
  // timings for the ledger; batch mode records per-model tracers anyway.
  const bool want_metrics = !metrics_out.empty();
  const bool want_events = !events_out.empty();
  frodo::metrics::Registry registry;
  std::optional<frodo::metrics::Rollups> rollups;
  std::string ledger;
  // Single-model telemetry capture: run() fills in what it learns; the
  // epilogue turns it into the one-record ledger/registry.
  frodo::batch::ModelOutcome single_outcome;
  const bool tracing =
      !trace_out.empty() || verbose || want_metrics || want_events;
  if (tracing) {
    tracer.set_metadata("model", inputs[0]);
    tracer.set_metadata("generator", generator_name);
    trace_scope.emplace(&tracer);
  }

  // Workers beyond the calling thread, shared by batch-level and intra-model
  // parallelism; 0 workers = fully serial.  Process-isolation mode must fork
  // from a single-threaded parent, so it gets no pool here — its concurrency
  // comes from running children in parallel (batch/isolate.hpp).
  const bool isolate_mode = batch_mode && isolate == "process";
  frodo::support::ThreadPool pool(isolate_mode ? 0 : jobs - 1);
  frodo::support::ThreadPool* pool_ptr =
      pool.worker_count() > 0 ? &pool : nullptr;

  // Single-model deadline: install the token here so every pass the run()
  // below reaches polls it.  Batch mode arms one per model instead.
  frodo::support::CancelToken deadline_token;
  std::optional<frodo::support::CancelScope> deadline_scope;
  if (timeout_per_model_ms > 0 && !batch_mode) {
    deadline_token.set_timeout_ms(timeout_per_model_ms);
    deadline_scope.emplace(&deadline_token);
  }

  // The full pipeline, with diagnostics accumulated into `engine` and
  // flushed exactly once by the epilogue.
  auto run = [&]() -> int {
    if (batch_mode) {
      std::vector<std::string> models;
      for (const std::string& input : inputs) {
        auto expanded = frodo::batch::expand_input(input);
        if (!expanded.is_ok()) {
          engine.error_from(expanded.status(), diag::codes::kBatchInput,
                            input);
          return 2;
        }
        for (std::string& path : expanded.value())
          models.push_back(std::move(path));
      }

      const frodo::batch::BatchOptions bopts =
          frodo::daemon::to_batch_options(req);

      frodo::batch::BatchResult result =
          frodo::batch::compile_batch(models, bopts);
      if (!result.usage_error.empty()) {
        std::fprintf(stderr, "frodoc: %s\n", result.usage_error.c_str());
        return 2;
      }

      // stdout strictly in batch order: "wrote" lines + per-model summary,
      // then the batch report/summary.
      for (const frodo::batch::ModelOutcome& outcome : result.models) {
        for (const std::string& path : outcome.written)
          std::printf("wrote %s\n", path.c_str());
        if (outcome.exit_code == 0)
          std::printf("%s: %d lines, %lld static doubles (%s)\n",
                      outcome.code.model_name.c_str(),
                      outcome.code.source_lines, outcome.code.static_doubles,
                      outcome.code.generator.c_str());
      }
      std::printf("%s",
                  frodo::batch::render_batch_report(result, bopts).c_str());

      flush_batch_diagnostics(result, diag_format);
      if (want_metrics)
        frodo::batch::record_batch_metrics(result, bopts, &registry);
      if (want_metrics || verbose)
        rollups = frodo::batch::batch_rollups(result);
      if (want_events)
        ledger = frodo::metrics::ledger_text(
            frodo::batch::batch_events(result, bopts));
      if (tracing) {
        for (const frodo::batch::ModelOutcome& outcome : result.models) {
          const std::string& label = outcome.model_name.empty()
                                         ? outcome.input_path
                                         : outcome.model_name;
          tracer.absorb(outcome.tracer, label + "/");
        }
      }
      return result.exit_code;
    }

    const std::string& model_path = inputs[0];
    auto model = frodo::slx::load(model_path);
    if (!model.is_ok()) {
      const std::string code = model.status().code().empty()
                                   ? std::string(diag::codes::kPkgUnreadable)
                                   : model.status().code();
      engine.error(code,
                   "cannot load '" + model_path + "': " + model.message(),
                   model_path);
      return 1;
    }
    single_outcome.model_name = model.value().name();

    if (want_check || want_ranges) {
      frodo::batch::CheckedModel checked;
      if (!frodo::batch::check_model(model.value(), engine, strict, &checked))
        return 1;
      if (want_check) {
        std::printf("%s: OK (%d blocks, %zu inputs, %zu outputs)\n",
                    model.value().name().c_str(), checked.flat.block_count(),
                    checked.sig.inputs.size(), checked.sig.outputs.size());
        return 0;
      }
      auto ranges = frodo::range::determine_ranges(
          checked.analysis, strict ? nullptr : &engine, pool_ptr);
      if (!ranges.is_ok()) {
        engine.error_from(ranges.status(), diag::codes::kAnalysisShape);
        return 1;
      }
      std::printf("%s", ranges.value().to_string(checked.analysis).c_str());
      std::printf("eliminated elements: %lld\n",
                  ranges.value().eliminated_elements(checked.analysis));
      // --print-ranges --report: ranges first, then the report, then exit
      // without generating code.
      if (!report_format.empty()) {
        auto report = frodo::batch::model_report(checked, generator_name,
                                                 optimize,
                                                 model.value().name(),
                                                 &ranges.value());
        if (!report.is_ok()) {
          engine.error_from(report.status(), diag::codes::kAnalysisShape);
          return 1;
        }
        std::printf("%s",
                    report_format == "json"
                        ? frodo::codegen::render_report_json(report.value())
                              .c_str()
                        : frodo::codegen::render_report_text(report.value())
                              .c_str());
      }
      return 0;
    }

    auto generator =
        frodo::codegen::make_generator(generator_name, simd_width, &optimize);
    if (!generator.is_ok()) {
      std::fprintf(stderr, "frodoc: %s\n", generator.message().c_str());
      return 2;
    }

    // Surface every model problem in one run before generating.
    frodo::batch::CheckedModel checked;
    if (!frodo::batch::check_model(model.value(), engine, strict, &checked))
      return 1;

    frodo::codegen::GenerateOptions gen_options;
    gen_options.engine = strict ? nullptr : &engine;
    gen_options.profile_hooks = profile_hooks;
    gen_options.pool = pool_ptr;

    // frodo-family generators run Algorithm 1 — with a cache directory the
    // ranges come through it (and a hit skips range analysis entirely).
    std::string family;
    for (char c : generator_name)
      family +=
          static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    frodo::range::RangeAnalysis ranges;
    const frodo::range::RangeAnalysis* precomputed = nullptr;
    bool cache_hit = false;
    const bool cache_used =
        cache_enabled && family.rfind("frodo", 0) == 0;
    std::optional<frodo::batch::AnalysisCache> cache;
    if (cache_used) {
      cache.emplace(cache_dir);
      auto r = frodo::batch::ranges_with_cache(
          model.value(), checked.analysis, &*cache,
          frodo::batch::optimize_flag_mask(optimize), family,
          gen_options.engine, pool_ptr, &cache_hit);
      if (!r.is_ok()) {
        engine.error_from(r.status(), diag::codes::kAnalysisShape);
        return 1;
      }
      ranges = std::move(r).value();
      precomputed = &ranges;
      gen_options.precomputed_ranges = precomputed;
    }
    single_outcome.cache_checked = cache_used;
    single_outcome.cache_hit = cache_hit;

    // --cost-model tuned: resolve the per-block decision vector (cached
    // entry, fresh autotune, or the FRODO-W007 static fallback) and rebind
    // the generator to it.
    frodo::batch::TunedSetup tuned;  // must outlive generate()
    frodo::codegen::OptimizeOptions effective = optimize;
    if (family.rfind("frodo", 0) == 0 &&
        optimize.cost_model ==
            frodo::codegen::cost::CostModelMode::kTuned) {
      frodo::batch::BatchOptions topts;
      topts.generator = generator_name;
      topts.outdir = outdir;
      topts.optimize = optimize;
      topts.autotune = autotune;
      topts.autotune_reps = autotune_reps;
      topts.autotune_rounds = autotune_rounds;
      topts.cache_dir = cache_used ? cache_dir : std::string();
      tuned = frodo::batch::resolve_tuned_decisions(
          model.value(), checked, cache ? &*cache : nullptr, topts,
          gen_options.engine);
      single_outcome.tuned_source = tuned.source;
      if (tuned.resolved) {
        effective.tuned = &tuned.vector;
        generator = frodo::codegen::make_generator(generator_name,
                                                   simd_width, &effective);
        if (!generator.is_ok()) {
          std::fprintf(stderr, "frodoc: %s\n", generator.message().c_str());
          return 2;
        }
      }
    }

    auto code = generator.value()->generate(model.value(), gen_options);
    if (!code.is_ok()) {
      engine.error_from(code.status(), diag::codes::kCodegenEmit);
      std::fprintf(stderr, "frodoc: code generation failed: %s\n",
                   code.message().c_str());
      return 1;
    }

    {
      frodo::trace::Scope write_span("write_output");
      std::error_code ec;
      std::filesystem::create_directories(outdir, ec);
      const std::string base = outdir + "/" + code.value().prefix;
      const std::pair<std::string, std::string> parts[] = {
          {base + ".c", code.value().source},
          {base + ".h", code.value().header}};
      for (const auto& [path, text] : parts) {
        auto status = frodo::zip::write_file(path, text);
        if (!status.is_ok()) {
          engine.error(diag::codes::kIoWrite, status.message(), path);
          return 2;
        }
        std::printf("wrote %s\n", path.c_str());
      }
      if (emit_main) {
        const std::string main_path = outdir + "/main.c";
        auto status = frodo::zip::write_file(
            main_path, frodo::codegen::emit_demo_main(code.value()));
        if (!status.is_ok()) {
          engine.error(diag::codes::kIoWrite, status.message(), main_path);
          return 2;
        }
        std::printf("wrote %s\n", main_path.c_str());
      }
    }
    std::printf("%s: %d lines, %lld static doubles (%s)\n",
                code.value().model_name.c_str(), code.value().source_lines,
                code.value().static_doubles, code.value().generator.c_str());

    // The report goes last on stdout so tooling can take everything after
    // the final "wrote ..." line.
    if (!report_format.empty()) {
      auto report = frodo::batch::model_report(checked, generator_name,
                                               effective,
                                               model.value().name(),
                                               precomputed);
      if (!report.is_ok()) {
        engine.error_from(report.status(), diag::codes::kAnalysisShape);
        return 1;
      }
      frodo::codegen::Report rendered = std::move(report).value();
      if (cache_used) rendered.analysis_cache = cache_hit ? "hit" : "miss";
      std::printf("%s",
                  report_format == "json"
                      ? frodo::codegen::render_report_json(rendered).c_str()
                      : frodo::codegen::render_report_text(rendered).c_str());
    }
    return 0;
  };

  const auto run_started = std::chrono::steady_clock::now();
  int rc = run();
  const long long run_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - run_started)
          .count();

  // Epilogue: uninstall the instrumentation (the RAII scopes restore the
  // previous sinks), export, flush all diagnostics once, summarize.
  deadline_scope.reset();
  trace_scope.reset();

  // Single-model telemetry: one ledger record / one-compile registry built
  // from what run() captured plus the global tracer.  Batch mode filled
  // these inside run() from the per-model outcomes instead.
  if (!batch_mode && (want_metrics || want_events)) {
    single_outcome.input_path = inputs[0];
    single_outcome.exit_code = rc;
    single_outcome.compile_us = run_us;
    single_outcome.engine = engine;
    single_outcome.tracer = tracer;
    if (rc != 0) single_outcome.failure_kind = "error";
    frodo::batch::BatchResult one;
    one.exit_code = rc;
    one.wall_us = run_us;
    one.failed_models = rc == 0 ? 0 : 1;
    one.cache_hits = single_outcome.cache_hit ? 1 : 0;
    one.cache_misses =
        single_outcome.cache_checked && !single_outcome.cache_hit ? 1 : 0;
    one.models.push_back(std::move(single_outcome));
    frodo::batch::BatchOptions oopts;
    oopts.generator = generator_name;
    oopts.jobs = 1;
    if (want_metrics) {
      frodo::batch::record_batch_metrics(one, oopts, &registry);
      rollups = frodo::batch::batch_rollups(one);
    }
    if (want_events)
      ledger = frodo::metrics::ledger_text(
          frodo::batch::batch_events(one, oopts));
  }

  if (!trace_out.empty()) {
    auto status = frodo::zip::write_file(trace_out, tracer.chrome_json());
    if (!status.is_ok()) {
      engine.error(diag::codes::kIoWrite,
                   "cannot write trace '" + trace_out + "': " +
                       status.message(),
                   trace_out);
      if (rc == 0) rc = 2;
    }
  }
  if (want_metrics) {
    // FILE gets the Prometheus exposition, FILE.json the schema-versioned
    // snapshot.  Like --trace-out, a failed write is FRODO-E902 (exit 2)
    // but never forfeits the generated bundle.
    const std::pair<std::string, std::string> sinks[] = {
        {metrics_out, registry.prometheus_text()},
        {metrics_out + ".json",
         registry.json_snapshot(rollups ? &*rollups : nullptr)}};
    for (const auto& [path, text] : sinks) {
      auto status = frodo::zip::write_file(path, text);
      if (!status.is_ok()) {
        engine.error(diag::codes::kIoWrite,
                     "cannot write metrics '" + path + "': " +
                         status.message(),
                     path);
        if (rc == 0) rc = 2;
      }
    }
  }
  if (want_events) {
    auto status = frodo::zip::write_file(events_out, ledger);
    if (!status.is_ok()) {
      engine.error(diag::codes::kIoWrite,
                   "cannot write event ledger '" + events_out + "': " +
                       status.message(),
                   events_out);
      if (rc == 0) rc = 2;
    }
  }
  // Batch mode flushes per-model diagnostics inside run(); the top-level
  // engine only carries batch-global problems (bad inputs, trace I/O).
  if (!batch_mode || engine.error_count() > 0 || engine.warning_count() > 0)
    flush_diagnostics(engine, diag_format);
  if (verbose) {
    std::fprintf(stderr, "%s", tracer.summary_text().c_str());
    if (rollups)
      std::fprintf(stderr, "%s", frodo::metrics::rollup_text(*rollups).c_str());
  }
  return rc;
}
