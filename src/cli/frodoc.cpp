// frodoc — the command-line code generator.
//
//   frodoc MODEL.(slxz|xml) [options]
//
// Options:
//   --generator NAME   frodo (default) | frodo-noopt | frodo-loose |
//                      frodo-shared | simulink | dfsynth | hcg
//   --out DIR          output directory (default: current directory)
//   --emit-main        also write a standalone demo main.c
//   --[no-]fuse               elementwise loop fusion (frodo; default on)
//   --[no-]shrink-buffers     range-hull buffer shrinking (frodo; default on)
//   --[no-]alias-truncation   zero-copy slice aliases (frodo; default on)
//   --print-ranges     dump the calculation ranges (Algorithm 1); composes
//                      with --report (ranges first, then the report), then
//                      exits without generating code
//   --report FMT       text | json — redundancy-elimination report on stdout
//                      (per-block full vs demanded sizes, optimizer passes,
//                      model totals; see docs/OBSERVABILITY.md)
//   --trace-out FILE   write a Chrome trace_event JSON of the pipeline
//                      phases (load in chrome://tracing or Perfetto)
//   --profile-hooks    emit FRODO_PROFILE-guarded per-block counters and a
//                      <model>_profile_dump() into the generated code
//   -v, --verbose      print per-phase wall times and pipeline counters to
//                      stderr
//   --check            validate the model (structure, types, shapes) and exit
//   --strict           treat degradable problems (unknown block types) as
//                      errors instead of warnings
//   --max-errors N     stop collecting after N errors (default 20)
//   --diag-format FMT  text (default) | json — diagnostics go to stderr
//   --simd-width N     HCG vector width in doubles (default 4)
//   --list-blocks      print the supported block types and exit
//   --version          print the frodoc build identification and exit
//   --help             this text
//
// Exit codes: 0 = success, 1 = the input has diagnosable problems,
// 2 = usage error or internal/environment failure.
//
// Writes <Model>.c and <Model>.h into the output directory.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "blocks/analysis.hpp"
#include "blocks/semantics.hpp"
#include "codegen/generator.hpp"
#include "codegen/report.hpp"
#include "graph/graph.hpp"
#include "model/flatten.hpp"
#include "model/validate.hpp"
#include "range/range_analysis.hpp"
#include "slx/slx.hpp"
#include "support/diag.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"
#include "support/version.hpp"
#include "zip/zip.hpp"

namespace {

namespace diag = frodo::diag;

int usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: frodoc MODEL.(slxz|xml) [--generator NAME] "
               "[--out DIR] [--emit-main] [--[no-]fuse] "
               "[--[no-]shrink-buffers] [--[no-]alias-truncation] "
               "[--print-ranges] [--report text|json] [--trace-out FILE] "
               "[--profile-hooks] [-v|--verbose] [--check] "
               "[--strict] [--max-errors N] [--diag-format text|json] "
               "[--simd-width N] [--list-blocks] [--version]\n");
  return code;
}

int list_blocks() {
  std::printf("supported block types:\n");
  for (const std::string& type : frodo::blocks::registered_types())
    std::printf("  %s\n", type.c_str());
  return 0;
}

// Diagnostics always go to stderr so stdout stays parseable; JSON is
// rendered even when empty (stable shape for tooling).
void flush_diagnostics(const diag::Engine& engine, const std::string& format) {
  if (format == "json") {
    std::fprintf(stderr, "%s\n", engine.render_json().c_str());
    return;
  }
  const std::string text = engine.render_text();
  if (!text.empty()) std::fprintf(stderr, "%s", text.c_str());
}

// Internally self-referential (graph points into flat, analysis into
// graph): keep the instance where it was filled in, never move or copy it.
struct CheckedModel {
  frodo::model::Model flat;
  frodo::graph::DataflowGraph graph;
  frodo::blocks::Analysis analysis;
  frodo::blocks::IoSignature sig;
};

// Validator + analysis pipeline, reporting every problem into `engine`.
// Returns false when errors were reported.
bool check_into(const frodo::model::Model& m, diag::Engine& engine,
                bool strict, CheckedModel* out) {
  frodo::model::ValidateOptions vopts;
  vopts.oracle = &frodo::blocks::validation_oracle();
  vopts.strict = strict;
  {
    frodo::trace::Scope span("validate");
    if (!frodo::model::validate(m, engine, vopts)) return false;
  }

  CheckedModel local;
  CheckedModel& cm = out != nullptr ? *out : local;
  {
    auto flat = frodo::model::flatten(m);
    if (!flat.is_ok()) {
      engine.error_from(flat.status(), diag::codes::kInternal);
      return false;
    }
    cm.flat = std::move(flat).value();
  }
  {
    auto graph = frodo::graph::DataflowGraph::build(cm.flat);
    if (!graph.is_ok()) {
      engine.error_from(graph.status(), diag::codes::kInternal);
      return false;
    }
    cm.graph = std::move(graph).value();
  }
  frodo::blocks::AnalyzeOptions aopts;
  aopts.engine = &engine;
  aopts.degrade_unknown = !strict;
  {
    auto analysis = frodo::blocks::analyze(cm.graph, aopts);
    if (!analysis.is_ok()) {
      engine.error_from(analysis.status(), diag::codes::kAnalysisShape);
      return false;
    }
    cm.analysis = std::move(analysis).value();
  }
  {
    auto sig = frodo::blocks::io_signature(cm.analysis);
    if (!sig.is_ok()) {
      engine.error_from(sig.status(), diag::codes::kModelPortNumbering);
      return false;
    }
    cm.sig = std::move(sig).value();
  }
  return true;
}

// The report mirrors the ranges/plan the selected generator actually uses:
// frodo variants run Algorithm 1 (frodo-loose widens, frodo-noopt plans no
// passes); the baselines compute every element, so their report shows zero
// elimination.
frodo::Result<frodo::codegen::Report> compute_report(
    const CheckedModel& checked, const std::string& generator_name,
    const frodo::codegen::OptimizeOptions& optimize,
    const std::string& model_name) {
  std::string lower;
  for (char c : generator_name)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  const bool frodo_style = lower.rfind("frodo", 0) == 0;

  frodo::range::RangeAnalysis ranges;
  if (frodo_style) {
    // Degradation warnings were already reported by the main pipeline run;
    // recomputing with a null engine keeps them from appearing twice.
    auto r = frodo::range::determine_ranges(checked.analysis, nullptr);
    if (!r.is_ok()) return r.status();
    ranges = std::move(r).value();
    if (lower == "frodo-loose")
      ranges = frodo::range::loosen(checked.analysis, ranges, nullptr);
  } else {
    ranges = frodo::range::full_ranges(checked.analysis);
  }
  const frodo::codegen::OptimizePlan plan = frodo::codegen::plan_optimizations(
      checked.analysis, ranges,
      (frodo_style && lower != "frodo-noopt")
          ? optimize
          : frodo::codegen::OptimizeOptions::none());
  return frodo::codegen::build_report(checked.analysis, ranges, plan,
                                      model_name, generator_name);
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_path;
  std::string generator_name = "frodo";
  std::string outdir = ".";
  std::string diag_format = "text";
  std::string report_format;  // empty = no report
  std::string trace_out;      // empty = no trace file
  bool verbose = false;
  bool profile_hooks = false;
  bool emit_main = false;
  bool want_ranges = false;
  bool want_check = false;
  bool strict = false;
  int simd_width = 4;
  int max_errors = frodo::diag::Engine::kDefaultMaxErrors;
  frodo::codegen::OptimizeOptions optimize;  // all passes on by default

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // Accept both "--opt value" and "--opt=value".
    std::string inline_value;
    bool has_inline_value = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        has_inline_value = true;
        arg = arg.substr(0, eq);
      }
    }
    auto value = [&]() -> const char* {
      return has_inline_value ? inline_value.c_str() : next();
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--list-blocks") return list_blocks();
    if (arg == "--version") {
      std::printf("%s\n", frodo::version_string());
      return 0;
    }
    if (arg == "--generator") {
      const char* v = value();
      if (v == nullptr) return usage(2);
      generator_name = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return usage(2);
      outdir = v;
    } else if (arg == "--simd-width") {
      const char* v = value();
      long long n = 0;
      if (v == nullptr || !frodo::parse_int(v, &n) || n < 1) return usage(2);
      simd_width = static_cast<int>(n);
    } else if (arg == "--max-errors") {
      const char* v = value();
      long long n = 0;
      if (v == nullptr || !frodo::parse_int(v, &n) || n < 1) {
        std::fprintf(stderr,
                     "frodoc: --max-errors expects a positive integer\n");
        return usage(2);
      }
      max_errors = static_cast<int>(n);
    } else if (arg == "--diag-format") {
      const char* v = value();
      if (v == nullptr ||
          (std::strcmp(v, "text") != 0 && std::strcmp(v, "json") != 0)) {
        std::fprintf(stderr,
                     "frodoc: --diag-format expects 'text' or 'json'\n");
        return usage(2);
      }
      diag_format = v;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--fuse") {
      optimize.fuse = true;
    } else if (arg == "--no-fuse") {
      optimize.fuse = false;
    } else if (arg == "--shrink-buffers") {
      optimize.shrink_buffers = true;
    } else if (arg == "--no-shrink-buffers") {
      optimize.shrink_buffers = false;
    } else if (arg == "--alias-truncation") {
      optimize.alias_truncation = true;
    } else if (arg == "--no-alias-truncation") {
      optimize.alias_truncation = false;
    } else if (arg == "--emit-main") {
      emit_main = true;
    } else if (arg == "--print-ranges") {
      want_ranges = true;
    } else if (arg == "--check") {
      want_check = true;
    } else if (arg == "--report") {
      const char* v = value();
      if (v == nullptr ||
          (std::strcmp(v, "text") != 0 && std::strcmp(v, "json") != 0)) {
        std::fprintf(stderr, "frodoc: --report expects 'text' or 'json'\n");
        return usage(2);
      }
      report_format = v;
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "frodoc: --trace-out expects a file path\n");
        return usage(2);
      }
      trace_out = v;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--profile-hooks") {
      profile_hooks = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "frodoc: unknown option '%s'\n", arg.c_str());
      return usage(2);
    } else if (model_path.empty()) {
      model_path = arg;
    } else {
      return usage(2);
    }
  }
  if (model_path.empty()) return usage(2);

  frodo::diag::Engine engine(max_errors);

  // The tracer must be installed before slx::load so the "parse" span is
  // captured; the epilogue below uninstalls it, writes --trace-out, and
  // prints the -v summary.
  frodo::trace::Tracer tracer;
  if (!trace_out.empty() || verbose) {
    tracer.set_metadata("model", model_path);
    tracer.set_metadata("generator", generator_name);
    frodo::trace::install(&tracer);
  }

  // The full pipeline, with diagnostics accumulated into `engine` and
  // flushed exactly once by the epilogue.
  auto run = [&]() -> int {
    auto model = frodo::slx::load(model_path);
    if (!model.is_ok()) {
      const std::string code = model.status().code().empty()
                                   ? std::string(diag::codes::kPkgUnreadable)
                                   : model.status().code();
      engine.error(code,
                   "cannot load '" + model_path + "': " + model.message(),
                   model_path);
      return 1;
    }

    if (want_check || want_ranges) {
      CheckedModel checked;
      if (!check_into(model.value(), engine, strict, &checked)) return 1;
      if (want_check) {
        std::printf("%s: OK (%d blocks, %zu inputs, %zu outputs)\n",
                    model.value().name().c_str(), checked.flat.block_count(),
                    checked.sig.inputs.size(), checked.sig.outputs.size());
        return 0;
      }
      auto ranges = frodo::range::determine_ranges(
          checked.analysis, strict ? nullptr : &engine);
      if (!ranges.is_ok()) {
        engine.error_from(ranges.status(), diag::codes::kAnalysisShape);
        return 1;
      }
      std::printf("%s", ranges.value().to_string(checked.analysis).c_str());
      std::printf("eliminated elements: %lld\n",
                  ranges.value().eliminated_elements(checked.analysis));
      // --print-ranges --report: ranges first, then the report, then exit
      // without generating code.
      if (!report_format.empty()) {
        auto report = compute_report(checked, generator_name, optimize,
                                     model.value().name());
        if (!report.is_ok()) {
          engine.error_from(report.status(), diag::codes::kAnalysisShape);
          return 1;
        }
        std::printf("%s",
                    report_format == "json"
                        ? frodo::codegen::render_report_json(report.value())
                              .c_str()
                        : frodo::codegen::render_report_text(report.value())
                              .c_str());
      }
      return 0;
    }

    auto generator =
        frodo::codegen::make_generator(generator_name, simd_width, &optimize);
    if (!generator.is_ok()) {
      std::fprintf(stderr, "frodoc: %s\n", generator.message().c_str());
      return 2;
    }

    // Surface every model problem in one run before generating.
    CheckedModel checked;
    if (!check_into(model.value(), engine, strict, &checked)) return 1;

    frodo::codegen::GenerateOptions gen_options;
    gen_options.engine = strict ? nullptr : &engine;
    gen_options.profile_hooks = profile_hooks;
    auto code = generator.value()->generate(model.value(), gen_options);
    if (!code.is_ok()) {
      engine.error_from(code.status(), diag::codes::kCodegenEmit);
      std::fprintf(stderr, "frodoc: code generation failed: %s\n",
                   code.message().c_str());
      return 1;
    }

    {
      frodo::trace::Scope write_span("write_output");
      std::error_code ec;
      std::filesystem::create_directories(outdir, ec);
      const std::string base = outdir + "/" + code.value().prefix;
      const std::pair<std::string, std::string> parts[] = {
          {base + ".c", code.value().source},
          {base + ".h", code.value().header}};
      for (const auto& [path, text] : parts) {
        auto status = frodo::zip::write_file(path, text);
        if (!status.is_ok()) {
          engine.error(diag::codes::kIoWrite, status.message(), path);
          return 2;
        }
        std::printf("wrote %s\n", path.c_str());
      }
      if (emit_main) {
        const std::string main_path = outdir + "/main.c";
        auto status = frodo::zip::write_file(
            main_path, frodo::codegen::emit_demo_main(code.value()));
        if (!status.is_ok()) {
          engine.error(diag::codes::kIoWrite, status.message(), main_path);
          return 2;
        }
        std::printf("wrote %s\n", main_path.c_str());
      }
    }
    std::printf("%s: %d lines, %lld static doubles (%s)\n",
                code.value().model_name.c_str(), code.value().source_lines,
                code.value().static_doubles, code.value().generator.c_str());

    // The report goes last on stdout so tooling can take everything after
    // the final "wrote ..." line.
    if (!report_format.empty()) {
      auto report = compute_report(checked, generator_name, optimize,
                                   model.value().name());
      if (!report.is_ok()) {
        engine.error_from(report.status(), diag::codes::kAnalysisShape);
        return 1;
      }
      std::printf("%s",
                  report_format == "json"
                      ? frodo::codegen::render_report_json(report.value())
                            .c_str()
                      : frodo::codegen::render_report_text(report.value())
                            .c_str());
    }
    return 0;
  };

  int rc = run();

  // Epilogue: stop tracing, export, flush all diagnostics once, summarize.
  frodo::trace::install(nullptr);
  if (!trace_out.empty()) {
    auto status = frodo::zip::write_file(trace_out, tracer.chrome_json());
    if (!status.is_ok()) {
      engine.error(diag::codes::kIoWrite,
                   "cannot write trace '" + trace_out + "': " +
                       status.message(),
                   trace_out);
      if (rc == 0) rc = 2;
    }
  }
  flush_diagnostics(engine, diag_format);
  if (verbose) std::fprintf(stderr, "%s", tracer.summary_text().c_str());
  return rc;
}
