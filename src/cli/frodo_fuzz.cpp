// frodo-fuzz — differential fuzzing campaign over random models.
//
//   frodo-fuzz --seeds 200 --corpus /tmp/corpus --minimize
//
// Generates seeded random models from the block property library and drives
// each through the serializer round-trip, every generator configuration,
// the JIT and the reference interpreter.  Exit status is 0 only when every
// model agrees everywhere.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fuzz/campaign.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: frodo-fuzz [options]\n"
               "  --seeds N        number of models to run (default 50)\n"
               "  --base-seed S    first seed (default 1)\n"
               "  --max-blocks K   block budget per model (default 24)\n"
               "  --steps N        simulation steps per config (default 3)\n"
               "  --jobs J         worker threads (default 1)\n"
               "  --timeout-per-seed MS  wall-clock budget per seed; an\n"
               "                   overrun is recorded as a phase=timeout\n"
               "                   finding (default: no deadline)\n"
               "  --corpus DIR     write failing repros under DIR\n"
               "  --minimize       shrink failing models before writing\n"
               "  --no-minimize    keep failing models as generated\n"
               "  --workdir DIR    JIT scratch dir (default "
               "/tmp/frodo_fuzz_work)\n"
               "  --cc BIN         C compiler for the JIT (default gcc)\n"
               "  --verbose        per-seed progress on stderr\n"
               "env: FRODO_FUZZ_SEEDS overrides --seeds (CI budget knob)\n");
}

bool parse_int(const char* text, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(text, &end, 10);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  frodo::fuzz::CampaignOptions options;
  options.minimize = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](long long* out) {
      if (i + 1 >= argc || !parse_int(argv[++i], out)) {
        std::fprintf(stderr, "frodo-fuzz: %s needs an integer argument\n",
                     arg.c_str());
        return false;
      }
      return true;
    };
    long long n = 0;
    if (arg == "--seeds") {
      if (!next_value(&n)) return 2;
      options.seeds = static_cast<int>(n);
    } else if (arg == "--base-seed") {
      if (!next_value(&n)) return 2;
      options.base_seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--max-blocks") {
      if (!next_value(&n)) return 2;
      options.gen.max_blocks = static_cast<int>(n);
      if (options.gen.min_blocks > options.gen.max_blocks)
        options.gen.min_blocks = options.gen.max_blocks;
    } else if (arg == "--steps") {
      if (!next_value(&n)) return 2;
      options.diff.steps = static_cast<int>(n);
    } else if (arg == "--jobs") {
      if (!next_value(&n)) return 2;
      options.jobs = static_cast<int>(n);
    } else if (arg == "--timeout-per-seed") {
      if (!next_value(&n) || n < 0) {
        std::fprintf(stderr,
                     "frodo-fuzz: --timeout-per-seed needs a non-negative "
                     "millisecond count\n");
        return 2;
      }
      options.timeout_per_seed_ms = n;
    } else if (arg == "--corpus") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "frodo-fuzz: --corpus needs a directory\n");
        return 2;
      }
      options.corpus_dir = argv[++i];
    } else if (arg == "--workdir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "frodo-fuzz: --workdir needs a directory\n");
        return 2;
      }
      options.diff.workdir = argv[++i];
    } else if (arg == "--cc") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "frodo-fuzz: --cc needs a compiler\n");
        return 2;
      }
      options.diff.cc = argv[++i];
    } else if (arg == "--minimize") {
      options.minimize = true;
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "frodo-fuzz: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  // CI bounds every fuzz entry point — this CLI and the in-process gtest
  // campaign alike — through one environment knob.
  if (const char* env_seeds = std::getenv("FRODO_FUZZ_SEEDS")) {
    long long n = 0;
    if (parse_int(env_seeds, &n) && n >= 0)
      options.seeds = static_cast<int>(n);
  }

  const frodo::fuzz::CampaignResult result =
      frodo::fuzz::run_campaign(options);
  std::printf("%s\n", result.summary().c_str());
  return result.clean() ? 0 : 1;
}
