// frodod — the compilation-as-a-service daemon (docs/DAEMON.md).
//
//   frodod --socket PATH [options]
//
// Options:
//   --socket PATH      Unix-domain socket to serve (required)
//   --jobs N           concurrent compile requests; the same pool runs the
//                      intra-model parallel passes (default 1)
//   --cache-dir DIR    persistent analysis-cache directory; without it the
//                      resident (memory-only) cache still makes repeat
//                      compiles warm, but nothing survives the daemon
//   --queue-limit N    max queued compile requests before new ones are
//                      rejected with FRODO-E920 (default 32)
//   --events-out FILE  append one "frodo.event/1" JSONL record per served
//                      compile request
//   --version          print the frodod build identification and exit
//   --help             this text
//
// Protocol: line-delimited JSON, one request per connection —
// "frodo.request/1" in, "frodo.response/1" out; verbs compile / metrics /
// health / shutdown.  `frodoc --connect PATH MODEL` is the stock client.
//
// Lifecycle: SIGTERM / SIGINT (or the "shutdown" verb) stop the accept
// loop, unlink the socket, finish every queued and in-flight request, and
// exit 0.  Exit codes: 0 = clean drain, 2 = startup/usage failure.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "daemon/server.hpp"
#include "support/strings.hpp"
#include "support/version.hpp"

namespace {

int usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: frodod --socket PATH [--jobs N] [--cache-dir DIR] "
               "[--queue-limit N] [--events-out FILE] [--version]\n");
  return code;
}

// The signal handler only pokes the daemon's self-pipe (async-signal-safe).
frodo::daemon::Daemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  frodo::daemon::DaemonOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::string inline_value;
    bool has_inline_value = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        has_inline_value = true;
        arg = arg.substr(0, eq);
      }
    }
    auto value = [&]() -> const char* {
      return has_inline_value ? inline_value.c_str() : next();
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--version") {
      std::printf("%s\n", frodo::version_string());
      return 0;
    }
    if (arg == "--socket") {
      const char* v = value();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "frodod: --socket expects a path\n");
        return usage(2);
      }
      options.socket_path = v;
    } else if (arg == "--jobs") {
      const char* v = value();
      long long n = 0;
      if (v == nullptr || !frodo::parse_int(v, &n) || n < 1) {
        std::fprintf(stderr, "frodod: --jobs expects a positive integer\n");
        return usage(2);
      }
      options.jobs = static_cast<int>(n);
    } else if (arg == "--cache-dir") {
      const char* v = value();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "frodod: --cache-dir expects a directory\n");
        return usage(2);
      }
      options.cache_dir = v;
    } else if (arg == "--queue-limit") {
      const char* v = value();
      long long n = 0;
      if (v == nullptr || !frodo::parse_int(v, &n) || n < 1) {
        std::fprintf(stderr,
                     "frodod: --queue-limit expects a positive integer\n");
        return usage(2);
      }
      options.queue_limit = static_cast<std::size_t>(n);
    } else if (arg == "--events-out") {
      const char* v = value();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "frodod: --events-out expects a file path\n");
        return usage(2);
      }
      options.events_out = v;
    } else {
      std::fprintf(stderr, "frodod: unknown option '%s'\n", arg.c_str());
      return usage(2);
    }
  }
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "frodod: --socket is required\n");
    return usage(2);
  }

  frodo::daemon::Daemon daemon(options);
  auto status = daemon.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "frodod: %s\n", status.message().c_str());
    return 2;
  }

  g_daemon = &daemon;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr, "frodod: serving %s (jobs=%d, queue-limit=%zu%s%s)\n",
               options.socket_path.c_str(), options.jobs, options.queue_limit,
               options.cache_dir.empty() ? ", cache=memory-only"
                                         : ", cache=",
               options.cache_dir.c_str());
  const int rc = daemon.serve();
  std::fprintf(stderr, "frodod: drained, exiting\n");
  g_daemon = nullptr;
  return rc;
}
