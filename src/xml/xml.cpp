#include "xml/xml.hpp"

#include <cctype>

#include "support/diag.hpp"
#include "support/strings.hpp"

namespace frodo::xml {

void Element::set_attr(std::string key, std::string value) {
  for (const auto& existing : attrs_) {
    if (existing.first == key)
      return;  // first-wins, mirroring common XML parser behaviour
  }
  attrs_.emplace_back(std::move(key), std::move(value));
}

const std::string* Element::find_attr(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::string& Element::attr(std::string_view key) const {
  static const std::string kEmpty;
  const std::string* v = find_attr(key);
  return v ? *v : kEmpty;
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::adopt_child(ElementPtr child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

const Element* Element::find_child(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::find_children(
    std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& child : children_) {
    if (child->name() == name) out.push_back(child.get());
  }
  return out;
}

namespace {

// Ingestion hardening: model documents nest a few levels per subsystem, so
// these caps are far above any legitimate file while keeping a hostile
// document from exhausting the parser's memory.  Element parsing runs on an
// explicit open-element stack, so depth costs heap, not call stack.
constexpr std::size_t kMaxNestingDepth = 4000;
constexpr std::size_t kMaxAttributesPerElement = 4096;

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Document> parse() {
    skip_prolog();
    ElementPtr root;
    {
      auto result = parse_element();
      if (!result.is_ok()) return result.status();
      root = std::move(result).value();
    }
    skip_misc();
    if (!at_end()) return fail("trailing content after document element");
    Document doc;
    doc.root = std::move(root);
    return doc;
  }

 private:
  bool at_end() const { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }

  char advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  bool consume(std::string_view token) {
    if (input_.substr(pos_).substr(0, token.size()) != token) return false;
    for (std::size_t i = 0; i < token.size(); ++i) advance();
    return true;
  }

  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek())))
      advance();
  }

  Status fail(const std::string& what) const {
    return fail_code(diag::codes::kXmlSyntax, what);
  }

  Status fail_code(const char* code, const std::string& what) const {
    return Status::error(code, "XML parse error at " + std::to_string(line_) +
                                   ":" + std::to_string(col_) + ": " + what);
  }

  // Skips the XML declaration, comments and PIs before the root element.
  void skip_prolog() { skip_misc(); }

  void skip_misc() {
    while (true) {
      skip_ws();
      if (consume("<?")) {
        while (!at_end() && !consume("?>")) advance();
      } else if (consume("<!--")) {
        while (!at_end() && !consume("-->")) advance();
      } else {
        return;
      }
    }
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> parse_name() {
    if (at_end() || !is_name_char(peek()) ||
        std::isdigit(static_cast<unsigned char>(peek())))
      return Result<std::string>(fail("expected name"));
    std::string name;
    while (!at_end() && is_name_char(peek())) name.push_back(advance());
    return name;
  }

  Result<std::string> parse_entity() {
    // Caller consumed '&'.
    std::string entity;
    while (!at_end() && peek() != ';') entity.push_back(advance());
    if (at_end()) return Result<std::string>(fail("unterminated entity"));
    advance();  // ';'
    if (entity == "lt") return std::string("<");
    if (entity == "gt") return std::string(">");
    if (entity == "amp") return std::string("&");
    if (entity == "quot") return std::string("\"");
    if (entity == "apos") return std::string("'");
    if (!entity.empty() && entity[0] == '#') {
      long long code = 0;
      bool ok = entity.size() > 1 && entity[1] == 'x'
                    ? parse_hex(entity.substr(2), &code)
                    : parse_int(entity.substr(1), &code);
      if (ok && code > 0 && code < 128)
        return std::string(1, static_cast<char>(code));
      if (ok && code >= 128) return encode_utf8(code);
    }
    return Result<std::string>(fail("unknown entity &" + entity + ";"));
  }

  static bool parse_hex(std::string_view text, long long* out) {
    if (text.empty()) return false;
    long long v = 0;
    for (char c : text) {
      int digit;
      if (c >= '0' && c <= '9')
        digit = c - '0';
      else if (c >= 'a' && c <= 'f')
        digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F')
        digit = c - 'A' + 10;
      else
        return false;
      v = v * 16 + digit;
    }
    *out = v;
    return true;
  }

  static std::string encode_utf8(long long code) {
    std::string out;
    if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  Result<std::string> parse_attr_value() {
    if (at_end() || (peek() != '"' && peek() != '\''))
      return Result<std::string>(fail("expected quoted attribute value"));
    char quote = advance();
    std::string value;
    while (!at_end() && peek() != quote) {
      if (peek() == '&') {
        advance();
        auto entity = parse_entity();
        if (!entity.is_ok()) return entity;
        value.append(entity.value());
      } else {
        value.push_back(advance());
      }
    }
    if (at_end()) return Result<std::string>(fail("unterminated attribute"));
    advance();  // closing quote
    return value;
  }

  struct StartTag {
    ElementPtr element;
    bool self_closing = false;
  };

  // Parses "<name attr=... (>|/>)" with the cursor on the '<'.
  Result<StartTag> parse_start_tag() {
    if (!consume("<")) return Result<StartTag>(fail("expected '<'"));
    auto name = parse_name();
    if (!name.is_ok()) return name.status();
    StartTag tag;
    tag.element = std::make_unique<Element>(name.value());

    std::size_t attr_count = 0;
    while (true) {
      skip_ws();
      if (at_end()) return Result<StartTag>(fail("unterminated start tag"));
      if (consume("/>")) {
        tag.self_closing = true;
        return tag;
      }
      if (consume(">")) return tag;
      if (++attr_count > kMaxAttributesPerElement)
        return Result<StartTag>(fail_code(
            diag::codes::kXmlTooManyAttrs,
            "element <" + tag.element->name() +
                "> exceeds the limit of " +
                std::to_string(kMaxAttributesPerElement) + " attributes"));
      auto key = parse_name();
      if (!key.is_ok()) return key.status();
      skip_ws();
      if (!consume("=")) return Result<StartTag>(fail("expected '='"));
      skip_ws();
      auto value = parse_attr_value();
      if (!value.is_ok()) return value.status();
      tag.element->set_attr(key.value(), value.value());
    }
  }

  // Iterative element parser on an explicit open-element stack: a hostile
  // deeply-nested document costs heap until the depth limit fires, never
  // call-stack frames.
  Result<ElementPtr> parse_element() {
    std::vector<ElementPtr> open;  // ancestors of the cursor, innermost last

    // Attaches a finished element to its parent, or returns it as the root.
    const auto close = [&open](ElementPtr done) -> ElementPtr {
      if (open.empty()) return done;
      open.back()->adopt_child(std::move(done));
      return nullptr;
    };

    while (true) {
      // Cursor is on the '<' of a start tag.
      if (open.size() >= kMaxNestingDepth)
        return Result<ElementPtr>(fail_code(
            diag::codes::kXmlTooDeep,
            "element nesting exceeds the limit of " +
                std::to_string(kMaxNestingDepth) + " levels"));
      auto start = parse_start_tag();
      if (!start.is_ok()) return start.status();
      if (start.value().self_closing) {
        if (ElementPtr root = close(std::move(start.value().element)))
          return root;
      } else {
        open.push_back(std::move(start.value().element));
      }

      // Content of the innermost open element, until a child start tag
      // (back to the outer loop) or its end tag (pop).
      while (!open.empty()) {
        Element& element = *open.back();
        if (at_end())
          return Result<ElementPtr>(
              fail("unterminated element <" + element.name() + ">"));
        if (consume("<![CDATA[")) {
          std::string cdata;
          while (!at_end() && !consume("]]>")) cdata.push_back(advance());
          element.append_text(cdata);
        } else if (consume("<!--")) {
          while (!at_end() && !consume("-->")) advance();
        } else if (consume("<?")) {
          while (!at_end() && !consume("?>")) advance();
        } else if (input_.substr(pos_).substr(0, 2) == "</") {
          consume("</");
          auto end_name = parse_name();
          if (!end_name.is_ok()) return end_name.status();
          if (end_name.value() != element.name())
            return Result<ElementPtr>(fail("mismatched end tag </" +
                                           end_name.value() + "> for <" +
                                           element.name() + ">"));
          skip_ws();
          if (!consume(">")) return Result<ElementPtr>(fail("expected '>'"));
          ElementPtr done = std::move(open.back());
          open.pop_back();
          if (ElementPtr root = close(std::move(done))) return root;
        } else if (peek() == '<') {
          break;  // child element: parse its start tag in the outer loop
        } else if (peek() == '&') {
          advance();
          auto entity = parse_entity();
          if (!entity.is_ok()) return entity.status();
          element.append_text(entity.value());
        } else {
          element.append_text(std::string_view(&input_[pos_], 1));
          advance();
        }
      }
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

void write_element(const Element& element, int depth, std::string& out) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  out += indent + "<" + element.name();
  for (const auto& [key, value] : element.attrs()) {
    out += " " + key + "=\"" + escape(value) + "\"";
  }
  const std::string_view text = trim(element.text());
  if (element.children().empty() && text.empty()) {
    out += "/>\n";
    return;
  }
  out += ">";
  if (element.children().empty()) {
    out += escape(text);
    out += "</" + element.name() + ">\n";
    return;
  }
  out += "\n";
  if (!text.empty()) {
    out += indent + "  " + escape(text) + "\n";
  }
  for (const auto& child : element.children()) {
    write_element(*child, depth + 1, out);
  }
  out += indent + "</" + element.name() + ">\n";
}

}  // namespace

Result<Document> parse(std::string_view input) {
  return Parser(input).parse();
}

std::string write(const Element& root) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  write_element(root, 0, out);
  return out;
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace frodo::xml
