// Minimal non-validating XML parser and writer.
//
// Simulink stores models as XML documents inside a ZIP container; our `.slxz`
// format follows the same architecture, so the code generator needs a real
// XML path rather than an ad-hoc line format.  The subset implemented here is
// what model files use: elements, attributes, character data, CDATA,
// comments, processing instructions and the five predefined entities.
// Namespaces are treated as plain prefixes; DTDs are not supported.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace frodo::xml {

class Element;
using ElementPtr = std::unique_ptr<Element>;

// An XML element.  Text content is aggregated per-element (mixed content
// keeps only the concatenated character data), which is sufficient for model
// files where leaves are either pure-text or pure-children.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // -- Attributes (ordered, first-wins on duplicates) -----------------------
  void set_attr(std::string key, std::string value);
  const std::string* find_attr(std::string_view key) const;
  // Returns "" when absent.
  const std::string& attr(std::string_view key) const;
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // -- Children --------------------------------------------------------------
  Element& add_child(std::string name);
  Element& adopt_child(ElementPtr child);
  const std::vector<ElementPtr>& children() const { return children_; }
  // First child with the given tag, or nullptr.
  const Element* find_child(std::string_view name) const;
  std::vector<const Element*> find_children(std::string_view name) const;

  // -- Text -------------------------------------------------------------------
  void append_text(std::string_view text) { text_.append(text); }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<ElementPtr> children_;
  std::string text_;
};

struct Document {
  ElementPtr root;
};

// Parses a complete XML document.  Errors carry 1-based line:column positions.
Result<Document> parse(std::string_view input);

// Serializes with 2-space indentation and a standard XML declaration.
std::string write(const Element& root);

// Escapes the five predefined entities (&<>"').
std::string escape(std::string_view text);

}  // namespace frodo::xml
