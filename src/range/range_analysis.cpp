#include "range/range_analysis.hpp"

#include <algorithm>
#include <numeric>

#include "support/cancel.hpp"
#include "support/diag.hpp"
#include "support/faultinject.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace frodo::range {

namespace {

using mapping::IndexSet;
using model::BlockId;

// Tarjan SCC with an explicit frame stack (graphs can be 100k+ blocks deep);
// returns true for blocks in a non-trivial SCC or with a self loop.
std::vector<bool> find_cyclic(const graph::DataflowGraph& graph) {
  const int n = graph.block_count();
  std::vector<bool> cyclic(static_cast<std::size_t>(n), false);
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<BlockId> stack;
  int counter = 0;

  struct Frame {
    BlockId v;
    std::size_t next = 0;
  };
  std::vector<Frame> frames;
  for (BlockId start = 0; start < n; ++start) {
    if (index[static_cast<std::size_t>(start)] >= 0) continue;
    frames.push_back(Frame{start});
    index[static_cast<std::size_t>(start)] =
        low[static_cast<std::size_t>(start)] = counter++;
    stack.push_back(start);
    on_stack[static_cast<std::size_t>(start)] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& edges = graph.out_edges(f.v);
      if (f.next < edges.size()) {
        const BlockId w = edges[f.next++].dst.block;
        if (w == f.v) cyclic[static_cast<std::size_t>(f.v)] = true;  // self
        if (index[static_cast<std::size_t>(w)] < 0) {
          index[static_cast<std::size_t>(w)] =
              low[static_cast<std::size_t>(w)] = counter++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          frames.push_back(Frame{w});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)],
                       index[static_cast<std::size_t>(w)]);
        }
        continue;
      }
      const BlockId v = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        low[static_cast<std::size_t>(frames.back().v)] =
            std::min(low[static_cast<std::size_t>(frames.back().v)],
                     low[static_cast<std::size_t>(v)]);
      }
      if (low[static_cast<std::size_t>(v)] ==
          index[static_cast<std::size_t>(v)]) {
        std::vector<BlockId> component;
        while (true) {
          const BlockId w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          component.push_back(w);
          if (w == v) break;
        }
        if (component.size() > 1) {
          for (BlockId w : component)
            cyclic[static_cast<std::size_t>(w)] = true;
        }
      }
    }
  }
  return cyclic;
}

// A FRODO-W002 degradation recorded during the traversal.  Parallel runs
// buffer warnings per block and replay them in serial traversal order, so
// diagnostic output is independent of the worker count.
struct PendingWarning {
  bool set = false;
  std::string message;
  std::string where;
};

// Trace counters tallied locally (a worker thread has no tracer installed);
// the calling thread flushes the sums after the traversal.
struct Tally {
  long long pullbacks = 0;
  long long worklist_iterations = 0;
  long long blocks_visited = 0;
  long long w002_loosenings = 0;

  void add(const Tally& other) {
    pullbacks += other.pullbacks;
    worklist_iterations += other.worklist_iterations;
    blocks_visited += other.blocks_visited;
    w002_loosenings += other.w002_loosenings;
  }
};

class Determiner {
 public:
  // `warnings` non-null enables graceful degradation (the caller reports
  // them); null makes a failed pullback a hard error.  `component`/`mine`
  // restrict the traversal to one weakly-connected component (every edge
  // stays inside a component, so only the entry loops need the filter).
  Determiner(const blocks::Analysis& analysis, RangeAnalysis* out,
             std::vector<PendingWarning>* warnings, Tally* tally,
             const std::vector<int>* component, int mine)
      : a_(analysis),
        r_(*out),
        warnings_(warnings),
        tally_(*tally),
        component_(component),
        mine_(mine) {
    const int n = a_.graph->block_count();
    computed_.assign(static_cast<std::size_t>(n), false);
  }

  Status run() {
    const int n = a_.graph->block_count();
    // Cyclic blocks keep their full ranges (fixed before any traversal so a
    // traversal that reaches them stops immediately).
    for (BlockId id = 0; id < n; ++id) {
      if (skip(id) || !r_.cyclic[static_cast<std::size_t>(id)]) continue;
      set_full(id);
      FRODO_RETURN_IF_ERROR(fill_in_ranges(id));
      computed_[static_cast<std::size_t>(id)] = true;
    }
    // Algorithm 1: determine child-first from the root blocks...
    for (BlockId id : a_.graph->roots()) {
      if (skip(id)) continue;
      FRODO_RETURN_IF_ERROR(determine(id));
    }
    // ...then sweep anything only reachable through a cycle.
    for (BlockId id = 0; id < n; ++id) {
      if (skip(id)) continue;
      FRODO_RETURN_IF_ERROR(determine(id));
    }
    return Status::ok();
  }

 private:
  bool skip(BlockId id) const {
    return component_ != nullptr &&
           (*component_)[static_cast<std::size_t>(id)] != mine_;
  }

  void set_full(BlockId id) {
    auto& ranges = r_.out_ranges[static_cast<std::size_t>(id)];
    const auto& shapes = a_.out_shapes[static_cast<std::size_t>(id)];
    for (std::size_t p = 0; p < shapes.size(); ++p)
      ranges[p] = IndexSet::full(shapes[p].size());
  }

  Status fill_in_ranges(BlockId id) {
    ++tally_.pullbacks;
    auto demand = a_.sems[static_cast<std::size_t>(id)]->pullback(
        a_.instance(id), r_.out_ranges[static_cast<std::size_t>(id)]);
    if (!demand.is_ok()) {
      if (warnings_ == nullptr)
        return demand.status().with_context(
            "I/O mapping of block '" + a_.model().block(id).name() + "'");
      // Graceful degradation: demand the block's full inputs.  Always sound
      // (a superset of any true demand); only optimization is lost.
      ++tally_.w002_loosenings;
      auto& w = (*warnings_)[static_cast<std::size_t>(id)];
      w.set = true;
      w.message = "I/O mapping failed (" + demand.message() +
                  ") — assuming full input ranges";
      w.where = a_.model().block(id).name();
      auto& in_ranges = r_.in_ranges[static_cast<std::size_t>(id)];
      in_ranges.clear();
      for (const model::Shape& s :
           a_.in_shapes[static_cast<std::size_t>(id)])
        in_ranges.push_back(IndexSet::full(s.size()));
      return Status::ok();
    }
    r_.in_ranges[static_cast<std::size_t>(id)] = std::move(demand).value();
    return Status::ok();
  }

  // The recursive function of Algorithm 1 (memoized), run on an explicit
  // frame stack: a frame is re-visited after its children complete, then
  // merges the demand each outgoing connection carries back (lines 20-24)
  // and pulls it through the block's I/O mapping.  Deep chains (100k+
  // blocks) must not overflow the call stack.
  Status determine(BlockId root) {
    if (computed_[static_cast<std::size_t>(root)]) return Status::ok();
    struct Frame {
      BlockId id;
      std::size_t next = 0;
    };
    std::vector<Frame> frames{{root}};
    computed_[static_cast<std::size_t>(root)] = true;
    while (!frames.empty()) {
      FRODO_RETURN_IF_ERROR(support::cancel_poll());
      ++tally_.worklist_iterations;
      Frame& f = frames.back();
      const auto& out_edges = a_.graph->out_edges(f.id);
      if (f.next < out_edges.size()) {
        const BlockId w = out_edges[f.next++].dst.block;
        if (!computed_[static_cast<std::size_t>(w)]) {
          computed_[static_cast<std::size_t>(w)] = true;
          frames.push_back(Frame{w});
        }
        continue;
      }
      // Children done: merge their demands into this block's out ranges.
      ++tally_.blocks_visited;
      const BlockId id = f.id;
      frames.pop_back();
      auto& ranges = r_.out_ranges[static_cast<std::size_t>(id)];
      for (const model::Connection& e : out_edges) {
        const auto& child_in =
            r_.in_ranges[static_cast<std::size_t>(e.dst.block)];
        if (e.dst.port < static_cast<int>(child_in.size()))
          ranges[static_cast<std::size_t>(e.src.port)].unite(
              child_in[static_cast<std::size_t>(e.dst.port)]);
      }
      // Pure sinks (Outport) have no out edges and no output ports; their
      // pullback declares the full-input demand (line 17).
      FRODO_RETURN_IF_ERROR(fill_in_ranges(id));
    }
    return Status::ok();
  }

  const blocks::Analysis& a_;
  RangeAnalysis& r_;
  std::vector<PendingWarning>* warnings_;
  Tally& tally_;
  const std::vector<int>* component_;
  int mine_;
  std::vector<bool> computed_;
};

// Weakly-connected components of the dataflow graph, labelled 0..n_comp-1
// in order of their smallest block id (deterministic).  Blocks that share no
// signal path can be range-determined independently.
std::vector<int> weak_components(const graph::DataflowGraph& graph,
                                 int* n_comp) {
  const int n = graph.block_count();
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(
              x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (BlockId id = 0; id < n; ++id) {
    for (const model::Connection& e : graph.out_edges(id)) {
      const int a = find(static_cast<int>(id));
      const int b = find(static_cast<int>(e.dst.block));
      if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] =
          std::min(a, b);
    }
  }
  std::vector<int> label(static_cast<std::size_t>(n), -1);
  int next = 0;
  for (BlockId id = 0; id < n; ++id) {
    const int root = find(static_cast<int>(id));
    if (label[static_cast<std::size_t>(root)] == -1)
      label[static_cast<std::size_t>(root)] = next++;
    label[static_cast<std::size_t>(id)] =
        label[static_cast<std::size_t>(root)];
  }
  *n_comp = next;
  return label;
}

// The block order in which the serial Determiner performs pullbacks: cyclic
// blocks by ascending id, then DFS post-order from the roots, then the
// residual sweep.  Cheap to recompute; used to replay buffered W002 warnings
// deterministically after a parallel traversal.
std::vector<BlockId> serial_fill_order(const blocks::Analysis& analysis,
                                       const std::vector<bool>& cyclic) {
  const int n = analysis.graph->block_count();
  std::vector<BlockId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> computed(static_cast<std::size_t>(n), false);
  for (BlockId id = 0; id < n; ++id) {
    if (!cyclic[static_cast<std::size_t>(id)]) continue;
    order.push_back(id);
    computed[static_cast<std::size_t>(id)] = true;
  }
  auto visit = [&](BlockId root) {
    if (computed[static_cast<std::size_t>(root)]) return;
    struct Frame {
      BlockId id;
      std::size_t next = 0;
    };
    std::vector<Frame> frames{{root}};
    computed[static_cast<std::size_t>(root)] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& out_edges = analysis.graph->out_edges(f.id);
      if (f.next < out_edges.size()) {
        const BlockId w = out_edges[f.next++].dst.block;
        if (!computed[static_cast<std::size_t>(w)]) {
          computed[static_cast<std::size_t>(w)] = true;
          frames.push_back(Frame{w});
        }
        continue;
      }
      order.push_back(f.id);
      frames.pop_back();
    }
  };
  for (BlockId id : analysis.graph->roots()) visit(id);
  for (BlockId id = 0; id < n; ++id) visit(id);
  return order;
}

}  // namespace

bool RangeAnalysis::optimizable(const blocks::Analysis& analysis,
                                BlockId id) const {
  const auto& shapes = analysis.out_shapes[static_cast<std::size_t>(id)];
  const auto& ranges = out_ranges[static_cast<std::size_t>(id)];
  for (std::size_t p = 0; p < shapes.size(); ++p) {
    if (ranges[p] != IndexSet::full(shapes[p].size())) return true;
  }
  return false;
}

long long RangeAnalysis::eliminated_elements(
    const blocks::Analysis& analysis) const {
  long long eliminated = 0;
  for (BlockId id = 0; id < analysis.graph->block_count(); ++id) {
    const auto& shapes = analysis.out_shapes[static_cast<std::size_t>(id)];
    const auto& ranges = out_ranges[static_cast<std::size_t>(id)];
    for (std::size_t p = 0; p < shapes.size(); ++p)
      eliminated += shapes[p].size() - ranges[p].count();
  }
  return eliminated;
}

std::string RangeAnalysis::to_string(const blocks::Analysis& analysis) const {
  std::string out;
  for (BlockId id = 0; id < analysis.graph->block_count(); ++id) {
    const model::Block& block = analysis.model().block(id);
    const auto& shapes = analysis.out_shapes[static_cast<std::size_t>(id)];
    out += block.name() + " (" + block.type() + ")";
    for (std::size_t p = 0; p < shapes.size(); ++p) {
      out += " y" + std::to_string(p) + "=" +
             out_ranges[static_cast<std::size_t>(id)][p].to_string() + "/" +
             std::to_string(shapes[p].size());
    }
    if (optimizable(analysis, id)) out += "  [optimizable]";
    out += "\n";
  }
  return out;
}

Result<RangeAnalysis> determine_ranges(const blocks::Analysis& analysis,
                                       diag::Engine* engine,
                                       support::ThreadPool* pool) {
  trace::Scope span("range_analysis");
  FRODO_RETURN_IF_ERROR(support::cancel_poll());
  FRODO_RETURN_IF_ERROR(
      support::faultinject::check("pass.range", diag::codes::kInternal));
  RangeAnalysis r;
  const int n = analysis.graph->block_count();
  r.out_ranges.resize(static_cast<std::size_t>(n));
  r.in_ranges.resize(static_cast<std::size_t>(n));
  for (BlockId id = 0; id < n; ++id) {
    r.out_ranges[static_cast<std::size_t>(id)].resize(
        analysis.out_shapes[static_cast<std::size_t>(id)].size());
  }
  r.cyclic = find_cyclic(*analysis.graph);

  // Warnings are buffered per block (disjoint across components, so no
  // locking) and replayed below in the serial traversal order.
  std::vector<PendingWarning> warnings(
      engine != nullptr ? static_cast<std::size_t>(n) : 0);
  std::vector<PendingWarning>* warning_slots =
      engine != nullptr ? &warnings : nullptr;
  Tally tally;

  int n_comp = 0;
  std::vector<int> component;
  if (pool != nullptr && pool->worker_count() > 0 && n > 1)
    component = weak_components(*analysis.graph, &n_comp);

  if (n_comp > 1) {
    // Independent subtrees in parallel; each worker writes only its own
    // component's slots of r/warnings.
    trace::count("range_partitions", n_comp);
    std::vector<Status> status(static_cast<std::size_t>(n_comp));
    std::vector<Tally> tallies(static_cast<std::size_t>(n_comp));
    // Cancellation follows the work onto the pool: each worker re-installs
    // the submitting thread's token for the duration of its component.
    support::CancelToken* token = support::cancel_current();
    pool->parallel_for(
        static_cast<std::size_t>(n_comp), [&](std::size_t c) {
          support::CancelScope cancel_scope(token);
          Determiner determiner(analysis, &r, warning_slots, &tallies[c],
                                &component, static_cast<int>(c));
          status[c] = determiner.run();
        });
    for (const Status& s : status) FRODO_RETURN_IF_ERROR(s);
    for (const Tally& t : tallies) tally.add(t);
  } else {
    Determiner determiner(analysis, &r, warning_slots, &tally, nullptr, -1);
    FRODO_RETURN_IF_ERROR(determiner.run());
  }

  if (tally.pullbacks > 0) trace::count("pullbacks", tally.pullbacks);
  if (tally.worklist_iterations > 0)
    trace::count("worklist_iterations", tally.worklist_iterations);
  if (tally.blocks_visited > 0)
    trace::count("blocks_visited", tally.blocks_visited);
  if (tally.w002_loosenings > 0)
    trace::count("w002_loosenings", tally.w002_loosenings);

  if (engine != nullptr) {
    for (BlockId id : serial_fill_order(analysis, r.cyclic)) {
      const PendingWarning& w = warnings[static_cast<std::size_t>(id)];
      if (w.set)
        engine->warning(diag::codes::kWPullbackFallback, w.message, w.where);
    }
  }
  return r;
}

RangeAnalysis loosen(const blocks::Analysis& analysis,
                     const RangeAnalysis& ranges, diag::Engine* engine) {
  trace::Scope span("range_loosen");
  RangeAnalysis loose = ranges;
  for (BlockId id = 0; id < analysis.graph->block_count(); ++id) {
    const auto& shapes = analysis.out_shapes[static_cast<std::size_t>(id)];
    auto& out = loose.out_ranges[static_cast<std::size_t>(id)];
    bool any = false;
    for (std::size_t p = 0; p < shapes.size(); ++p) {
      if (!out[p].is_empty()) {
        out[p] = IndexSet::full(shapes[p].size());
        any = true;
      }
    }
    if (any) {
      auto demand = analysis.sems[static_cast<std::size_t>(id)]->pullback(
          analysis.instance(id), out);
      if (demand.is_ok()) {
        loose.in_ranges[static_cast<std::size_t>(id)] =
            std::move(demand).value();
      } else {
        // Keeping the tight pre-loosening demand would under-report what
        // the widened block now reads; fall back to full inputs (always
        // sound) and surface the failed pullback like determine_ranges does.
        trace::count("w002_loosenings");
        if (engine != nullptr)
          engine->warning(diag::codes::kWPullbackFallback,
                          "I/O mapping failed while loosening (" +
                              demand.message() +
                              ") — assuming full input ranges",
                          analysis.model().block(id).name());
        auto& in_ranges = loose.in_ranges[static_cast<std::size_t>(id)];
        in_ranges.clear();
        for (const model::Shape& s :
             analysis.in_shapes[static_cast<std::size_t>(id)])
          in_ranges.push_back(IndexSet::full(s.size()));
      }
    }
  }
  return loose;
}

RangeAnalysis full_ranges(const blocks::Analysis& analysis) {
  RangeAnalysis r;
  const int n = analysis.graph->block_count();
  r.cyclic.assign(static_cast<std::size_t>(n), false);
  r.out_ranges.resize(static_cast<std::size_t>(n));
  r.in_ranges.resize(static_cast<std::size_t>(n));
  for (BlockId id = 0; id < n; ++id) {
    const auto& shapes = analysis.out_shapes[static_cast<std::size_t>(id)];
    auto& out = r.out_ranges[static_cast<std::size_t>(id)];
    out.resize(shapes.size());
    for (std::size_t p = 0; p < shapes.size(); ++p)
      out[p] = IndexSet::full(shapes[p].size());
    auto demand = analysis.sems[static_cast<std::size_t>(id)]->pullback(
        analysis.instance(id), out);
    if (demand.is_ok())
      r.in_ranges[static_cast<std::size_t>(id)] = std::move(demand).value();
  }
  return r;
}

}  // namespace frodo::range
