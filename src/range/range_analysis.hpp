// Calculation Range Determination — Algorithm 1 of the paper.
//
// For every block, determine which output elements anybody downstream
// actually needs (its *calculation range*) by recursing child-first from the
// root blocks and pulling each child's input demand back through its I/O
// mapping.  Blocks whose range is smaller than their full output are the
// *optimizable blocks*; FRODO emits range-reduced code for them.
//
// Extensions over the paper's pseudo-code, both required for general models:
//   * memoization, so shared subtrees of a DAG are determined once;
//   * feedback cycles (delay loops): every block in a non-trivial SCC keeps
//     its full range — sound, and matching the paper's scope (its models'
//     data-intensive paths are acyclic);
//   * explicit worklists instead of call-stack recursion, so a 100k-block
//     chain cannot overflow the stack.
#pragma once

#include <string>
#include <vector>

#include "blocks/analysis.hpp"
#include "mapping/index_set.hpp"
#include "support/diag.hpp"
#include "support/status.hpp"

namespace frodo::support {
class ThreadPool;
}  // namespace frodo::support

namespace frodo::range {

struct RangeAnalysis {
  // Per block, per output port: the calculation range.
  std::vector<std::vector<mapping::IndexSet>> out_ranges;
  // Per block, per input port: the demand this block places on its drivers.
  std::vector<std::vector<mapping::IndexSet>> in_ranges;
  // Blocks in feedback cycles (kept at full range).
  std::vector<bool> cyclic;

  // True when some output port's range is strictly smaller than the full
  // signal — the block gets concise code.
  bool optimizable(const blocks::Analysis& analysis,
                   model::BlockId id) const;

  // Number of elements FRODO does not compute, summed over all ports.
  long long eliminated_elements(const blocks::Analysis& analysis) const;

  // Human-readable per-block range table (used by examples and tests).
  std::string to_string(const blocks::Analysis& analysis) const;
};

// When `engine` is non-null the analysis degrades gracefully: a failing I/O
// mapping pullback falls back to demanding the block's *full* inputs (always
// sound — it only costs optimization) with a FRODO-W002 warning, instead of
// failing the run.
//
// When `pool` is non-null (and has workers), Algorithm 1 partitions the
// graph's weakly-connected components — independent sink subtrees that share
// no signal — across the pool.  Every block's traversal, memoization and
// pullbacks stay within its own component, so the computed ranges are
// *identical* to the serial run (a per-sink split would not be: pullbacks
// may over-approximate, so they need not distribute over the IndexSet union
// of split demands).  FRODO-W002 warnings are buffered per block and
// replayed into `engine` in the serial traversal order, keeping diagnostic
// output byte-identical no matter how many workers ran.
Result<RangeAnalysis> determine_ranges(const blocks::Analysis& analysis,
                                       diag::Engine* engine = nullptr,
                                       support::ThreadPool* pool = nullptr);

// Ablation: whole-block granularity — any partially-demanded range is
// widened back to the full signal (only completely dead blocks stay empty).
// This models a "loose elimination" (§1, challenge 2).  A failing pullback
// falls back to full input ranges, reported through `engine` (FRODO-W002)
// when one is given.
RangeAnalysis loosen(const blocks::Analysis& analysis,
                     const RangeAnalysis& ranges,
                     diag::Engine* engine = nullptr);

// Baseline: every block computes everything.
RangeAnalysis full_ranges(const blocks::Analysis& analysis);

}  // namespace frodo::range
