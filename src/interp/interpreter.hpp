// Reference interpreter — the stand-in for Simulink's model simulation.
//
// Executes the analyzed model directly from block semantics, one step at a
// time.  This is the correctness oracle the paper's evaluation uses ("we
// generated a large number of random test cases ... and compared the results
// with those from model simulations"): every generator's compiled output is
// diffed against it in the integration tests.
#pragma once

#include <vector>

#include "blocks/analysis.hpp"
#include "support/status.hpp"

namespace frodo::interp {

class Interpreter {
 public:
  // `analysis` must outlive the interpreter.
  static Result<Interpreter> create(const blocks::Analysis& analysis);

  const blocks::IoSignature& signature() const { return signature_; }

  // Re-initializes all block state (fresh t=0).
  Status reset();

  // Runs one step.  `inputs[k]` must have signature().inputs[k] elements;
  // on return `outputs[k]` holds signature().outputs[k].
  Status step(const std::vector<std::vector<double>>& inputs,
              std::vector<std::vector<double>>* outputs);

 private:
  Interpreter() = default;

  const blocks::Analysis* analysis_ = nullptr;
  blocks::IoSignature signature_;
  // buffers_[block][port] -> values
  std::vector<std::vector<std::vector<double>>> buffers_;
  std::vector<std::vector<double>> states_;
};

}  // namespace frodo::interp
