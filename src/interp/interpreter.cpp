#include "interp/interpreter.hpp"

namespace frodo::interp {

Result<Interpreter> Interpreter::create(const blocks::Analysis& analysis) {
  Interpreter interp;
  interp.analysis_ = &analysis;
  FRODO_ASSIGN_OR_RETURN(interp.signature_, blocks::io_signature(analysis));

  const int n = analysis.graph->block_count();
  interp.buffers_.resize(static_cast<std::size_t>(n));
  interp.states_.resize(static_cast<std::size_t>(n));
  for (model::BlockId id = 0; id < n; ++id) {
    const auto& shapes = analysis.out_shapes[static_cast<std::size_t>(id)];
    auto& bufs = interp.buffers_[static_cast<std::size_t>(id)];
    bufs.resize(shapes.size());
    for (std::size_t p = 0; p < shapes.size(); ++p)
      bufs[p].assign(static_cast<std::size_t>(shapes[p].size()), 0.0);
    const blocks::BlockSemantics& sem =
        *analysis.sems[static_cast<std::size_t>(id)];
    const model::Block& block = analysis.model().block(id);
    if (sem.has_state(block)) {
      interp.states_[static_cast<std::size_t>(id)].assign(
          static_cast<std::size_t>(sem.state_size(analysis.instance(id))),
          0.0);
    }
  }
  FRODO_RETURN_IF_ERROR(interp.reset());
  return interp;
}

Status Interpreter::reset() {
  for (model::BlockId id = 0; id < analysis_->graph->block_count(); ++id) {
    auto& state = states_[static_cast<std::size_t>(id)];
    if (state.empty()) continue;
    FRODO_RETURN_IF_ERROR(
        analysis_->sems[static_cast<std::size_t>(id)]
            ->init_state(analysis_->instance(id), state.data())
            .with_context("initializing state of '" +
                          analysis_->model().block(id).name() + "'"));
  }
  return Status::ok();
}

Status Interpreter::step(const std::vector<std::vector<double>>& inputs,
                         std::vector<std::vector<double>>* outputs) {
  if (inputs.size() != signature_.inputs.size())
    return Status::error("step: expected " +
                         std::to_string(signature_.inputs.size()) +
                         " input vectors, got " +
                         std::to_string(inputs.size()));
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    const long long want = signature_.inputs[k].shape.size();
    if (static_cast<long long>(inputs[k].size()) != want)
      return Status::error("step: input " + std::to_string(k + 1) +
                           " must have " + std::to_string(want) +
                           " elements");
    buffers_[static_cast<std::size_t>(signature_.inputs[k].block)][0] =
        inputs[k];
  }

  // Compute phase, in schedule order.
  for (model::BlockId id : analysis_->order) {
    const blocks::BlockSemantics& sem =
        *analysis_->sems[static_cast<std::size_t>(id)];
    const model::Block& block = analysis_->model().block(id);
    if (block.type() == "Inport") continue;

    std::vector<const double*> in;
    for (int p = 0; p < analysis_->graph->input_count(id); ++p) {
      const auto driver = analysis_->graph->input_driver(id, p);
      in.push_back(buffers_[static_cast<std::size_t>(driver->block)]
                           [static_cast<std::size_t>(driver->port)]
                               .data());
    }
    std::vector<double*> out;
    for (auto& buf : buffers_[static_cast<std::size_t>(id)])
      out.push_back(buf.data());
    double* state = states_[static_cast<std::size_t>(id)].empty()
                        ? nullptr
                        : states_[static_cast<std::size_t>(id)].data();
    FRODO_RETURN_IF_ERROR(
        sem.simulate(analysis_->instance(id), in, out, state)
            .with_context("simulating '" + block.name() + "'"));
  }

  // End-of-step state updates.
  for (model::BlockId id : analysis_->order) {
    auto& state = states_[static_cast<std::size_t>(id)];
    if (state.empty()) continue;
    std::vector<const double*> in;
    for (int p = 0; p < analysis_->graph->input_count(id); ++p) {
      const auto driver = analysis_->graph->input_driver(id, p);
      in.push_back(buffers_[static_cast<std::size_t>(driver->block)]
                           [static_cast<std::size_t>(driver->port)]
                               .data());
    }
    FRODO_RETURN_IF_ERROR(
        analysis_->sems[static_cast<std::size_t>(id)]
            ->update_state(analysis_->instance(id), in, state.data())
            .with_context("updating state of '" +
                          analysis_->model().block(id).name() + "'"));
  }

  // Collect outputs (the Outport's input buffer).
  outputs->clear();
  for (const blocks::IoPort& port : signature_.outputs) {
    const auto driver = analysis_->graph->input_driver(port.block, 0);
    outputs->push_back(buffers_[static_cast<std::size_t>(driver->block)]
                               [static_cast<std::size_t>(driver->port)]);
  }
  return Status::ok();
}

}  // namespace frodo::interp
