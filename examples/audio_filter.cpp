// Deployment workflow: model package in, deployable C bundle out.
//
// Takes the AudioProcess benchmark model, saves it as a `.slxz` package
// (the XML-in-ZIP container format), loads it back — the path an exchange
// with a modeling tool would take — and writes a ready-to-ship code bundle:
//
//   <outdir>/AudioProcess.c        FRODO-generated step code
//   <outdir>/AudioProcess.h        public interface
//   <outdir>/main.c                demo driver
//
// then compiles and runs the bundle to verify it is self-contained.
//
//   ./examples/audio_filter [outdir]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "slx/slx.hpp"
#include "zip/zip.hpp"

int main(int argc, char** argv) {
  using namespace frodo;
  const std::string outdir = argc > 1 ? argv[1] : "/tmp/frodo_audio_bundle";
  std::filesystem::create_directories(outdir);

  // 1. Author -> package -> load (round trip through the .slxz container).
  auto model = benchmodels::build_audio_process();
  const std::string package = outdir + "/AudioProcess.slxz";
  if (!slx::save(model.value(), package).is_ok()) return 1;
  auto loaded = slx::load(package);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.message().c_str());
    return 1;
  }
  std::printf("wrote and reloaded %s (%d blocks)\n", package.c_str(),
              loaded.value().deep_block_count());

  // 2. Generate the deployable code.
  codegen::FrodoGenerator gen;
  auto code = gen.generate(loaded.value());
  if (!code.is_ok()) {
    std::fprintf(stderr, "generate failed: %s\n", code.message().c_str());
    return 1;
  }
  zip::write_file(outdir + "/" + code.value().prefix + ".c",
                  code.value().source);
  zip::write_file(outdir + "/" + code.value().prefix + ".h",
                  code.value().header);

  // 3. A demo driver exercising the public interface.
  std::string main_c = "#include <stdio.h>\n#include \"" +
                       code.value().prefix + ".h\"\n\n";
  main_c += "int main(void) {\n";
  for (const auto& port : code.value().inputs)
    main_c += "  static double " + port.name + "[" +
              std::to_string(port.size) + "]; /* " + port.comment + " */\n";
  for (const auto& port : code.value().outputs)
    main_c += "  static double " + port.name + "[" +
              std::to_string(port.size) + "]; /* " + port.comment + " */\n";
  main_c += "  " + code.value().prefix + "_init();\n";
  main_c += "  for (int i = 0; i < " +
            std::to_string(code.value().inputs[0].size) +
            "; ++i) in0[i] = i % 17 * 0.25;\n";
  main_c += "  for (int t = 0; t < 100; ++t) " + code.value().prefix +
            "_step(";
  bool first = true;
  for (const auto& port : code.value().inputs) {
    main_c += (first ? "" : ", ") + port.name;
    first = false;
  }
  for (const auto& port : code.value().outputs) {
    main_c += (first ? "" : ", ") + port.name;
    first = false;
  }
  main_c += ");\n";
  main_c += "  printf(\"band means: ";
  for (int b = 0; b < 4; ++b) main_c += "%g ";
  main_c += "\\n\"";
  for (int b = 0; b < 4; ++b)
    main_c += ", out" + std::to_string(b) + "[0]";
  main_c += ");\n  return 0;\n}\n";
  zip::write_file(outdir + "/main.c", main_c);

  // 4. Prove the bundle is self-contained: compile and run it.
  const std::string cmd = "cd '" + outdir + "' && gcc -O2 -o demo " +
                          code.value().prefix + ".c main.c -lm && ./demo";
  std::printf("$ %s\n", cmd.c_str());
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "bundle build/run failed\n");
    return 1;
  }
  std::printf("bundle written to %s\n", outdir.c_str());
  return 0;
}
