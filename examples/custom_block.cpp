// Extending the block property library.
//
// The paper's block property library and element-level code library are
// extensible by construction ("for each supported block, we manually
// developed the corresponding block property library and element-level code
// library").  This example registers a user-defined "SoftClip" block —
// shape inference, I/O mapping, reference semantics, and code emission —
// and shows that the whole pipeline (range analysis, all generators, the
// interpreter) picks it up without modification.
//
//   ./examples/custom_block
#include <cmath>
#include <cstdio>
#include <memory>

#include "blocks/analysis.hpp"
#include "blocks/emit_util.hpp"
#include "blocks/semantics.hpp"
#include "codegen/generator.hpp"
#include "graph/graph.hpp"
#include "interp/interpreter.hpp"
#include "jit/jit.hpp"
#include "model/flatten.hpp"
#include "range/range_analysis.hpp"
#include "support/strings.hpp"

namespace {

using namespace frodo;
using mapping::IndexSet;
using model::Shape;

// y[i] = x[i] / (1 + |x[i]|), scaled by a Drive parameter — a soft limiter.
class SoftClipSemantics final : public blocks::BlockSemantics {
 public:
  std::string_view type() const override { return "SoftClip"; }
  int input_count(const model::Block&) const override { return 1; }

  Result<std::vector<Shape>> infer(
      const model::Block&, const std::vector<Shape>& in) const override {
    return std::vector<Shape>{in[0]};
  }

  Result<std::vector<IndexSet>> pullback(
      const blocks::BlockInstance&,
      const std::vector<IndexSet>& out_demand) const override {
    return std::vector<IndexSet>{out_demand[0]};  // elementwise
  }

  Status simulate(const blocks::BlockInstance& inst,
                  const std::vector<const double*>& in,
                  const std::vector<double*>& out, double*) const override {
    FRODO_ASSIGN_OR_RETURN(double drive, drive_of(inst.b()));
    for (long long i = 0; i < inst.out_shapes[0].size(); ++i) {
      const double x = in[0][i] * drive;
      out[0][i] = x / (1.0 + std::fabs(x));
    }
    return Status::ok();
  }

  Status emit(codegen::EmitContext& ctx) const override {
    FRODO_ASSIGN_OR_RETURN(double drive, drive_of(*ctx.block));
    blocks::detail::for_each_interval(
        ctx, ctx.out_ranges[0], "i", [&](const std::string& i) {
          ctx.w->line("double x = " + ctx.in[0] + "[" + i + "] * " +
                      frodo::format_double(drive) + ";");
          ctx.w->line(ctx.out[0] + "[" + i + "] = x / (1.0 + fabs(x));");
        });
    return Status::ok();
  }

 private:
  static Result<double> drive_of(const model::Block& block) {
    FRODO_ASSIGN_OR_RETURN(model::Value v, block.param("Drive"));
    return v.as_double();
  }
};

}  // namespace

int main() {
  blocks::register_semantics(std::make_unique<SoftClipSemantics>());

  // A model using the custom block under a truncation: FRODO should shrink
  // the SoftClip loop to the Selector's window.
  model::Model m("CustomDemo");
  m.add_block("In", "Inport").set_param("Port", 1).set_param("Dims", 256);
  m.add_block("Clip", "SoftClip").set_param("Drive", 2.5);
  m.add_block("Sel", "Selector").set_param("Start", 100).set_param("End",
                                                                   163);
  m.add_block("Out", "Outport").set_param("Port", 1);
  m.connect("In", 0, "Clip", 0);
  m.connect("Clip", 0, "Sel", 0);
  m.connect("Sel", 0, "Out", 0);

  auto flat = model::flatten(m);
  auto graph = graph::DataflowGraph::build(flat.value());
  auto analysis = blocks::analyze(graph.value());
  auto ranges = range::determine_ranges(analysis.value());
  std::printf("ranges with the custom block:\n%s\n",
              ranges.value().to_string(analysis.value()).c_str());

  codegen::FrodoGenerator gen;
  auto code = gen.generate(m);
  if (!code.is_ok()) {
    std::fprintf(stderr, "%s\n", code.message().c_str());
    return 1;
  }

  // Verify against the interpreter.
  jit::CompilerProfile profile{"gcc-O2", "gcc", {"-O2"}, 4};
  auto compiled =
      jit::compile_and_load(code.value(), profile, "/tmp/frodo_custom");
  if (!compiled.is_ok()) {
    std::fprintf(stderr, "%s\n", compiled.message().c_str());
    return 1;
  }
  compiled.value().init();
  auto inputs = jit::random_inputs(code.value(), 7, -3.0, 3.0);
  const double* in_ptrs[] = {inputs[0].data()};
  std::vector<double> out(64);
  double* out_ptrs[] = {out.data()};
  compiled.value().step(in_ptrs, out_ptrs);

  auto interp = interp::Interpreter::create(analysis.value());
  std::vector<std::vector<double>> want;
  if (!interp.value().step(inputs, &want).is_ok()) return 1;
  double max_err = 0;
  for (std::size_t i = 0; i < 64; ++i)
    max_err = std::max(max_err, std::fabs(out[i] - want[0][i]));
  std::printf("custom block generated code vs simulation: max |err| = %g "
              "%s\n",
              max_err, max_err < 1e-12 ? "(OK)" : "(MISMATCH!)");
  return max_err < 1e-12 ? 0 : 1;
}
