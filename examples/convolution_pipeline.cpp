// Figure 1, reproduced: how the four generators translate the same
// Convolution + Selector motif, and what that costs.
//
// Prints the convolution section of each generator's output (the paper's
// green/orange snippets: Embedded Coder's full-padding loop with boundary
// judgments vs FRODO's range-reduced loop) and times all four at -O3.
//
//   ./examples/convolution_pipeline
#include <cstdio>

#include "codegen/generator.hpp"
#include "jit/jit.hpp"
#include "support/strings.hpp"

namespace {

// Extracts the lines emitted for one block (between its comment marker and
// the next block comment).
std::string block_section(const std::string& source,
                          const std::string& block_name) {
  const std::string marker = "/* " + block_name + " ";
  const std::size_t begin = source.find(marker);
  if (begin == std::string::npos) return "  (no code emitted)\n";
  std::size_t end = source.find("\n  /* ", begin + marker.size());
  if (end == std::string::npos) end = source.find("\n}", begin);
  return source.substr(begin, end - begin) + "\n";
}

}  // namespace

int main() {
  using namespace frodo;

  // A data-heavy same-convolution: 1024 samples, 65-tap kernel, Selector
  // keeping the centered window.
  model::Model m("SameConv");
  m.add_block("In", "Inport").set_param("Port", 1).set_param("Dims", 1024);
  std::vector<double> taps;
  for (int i = 0; i < 65; ++i) taps.push_back(1.0 / 65.0);
  m.add_block("Kernel", "Constant").set_param("Value", model::Value(taps));
  m.add_block("Conv", "Convolution");
  m.add_block("Sel", "Selector").set_param("Start", 32).set_param("End",
                                                                  1055);
  m.add_block("Out", "Outport").set_param("Port", 1);
  m.connect("In", 0, "Conv", 0);
  m.connect("Kernel", 0, "Conv", 1);
  m.connect("Conv", 0, "Sel", 0);
  m.connect("Sel", 0, "Out", 0);

  const jit::CompilerProfile profile{"gcc-O3", "gcc", {"-O3"}, 4};
  const int reps = 20000;

  std::printf("Figure 1: the Convolution block as emitted by each "
              "generator\n");
  std::printf("============================================================"
              "\n");
  for (const auto& gen : codegen::paper_generators()) {
    auto code = gen->generate(m);
    if (!code.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", gen->name().c_str(),
                   code.message().c_str());
      return 1;
    }
    std::printf("\n---- %s ----\n%s", gen->name().c_str(),
                block_section(code.value().source, "Conv").c_str());

    auto compiled =
        jit::compile_and_load(code.value(), profile, "/tmp/frodo_convdemo");
    if (!compiled.is_ok()) {
      std::fprintf(stderr, "%s\n", compiled.message().c_str());
      return 1;
    }
    const auto inputs = jit::random_inputs(code.value(), 42);
    const double seconds = jit::time_steps(compiled.value(), inputs, reps);
    std::printf("  -> %d steps at -O3: %.3fs\n", reps, seconds);
  }
  std::printf("\nThe Selector makes %d of the %d convolution outputs "
              "redundant; only FRODO's loop bounds reflect that.\n",
              2 * 32, 1024 + 65 - 1);
  return 0;
}
