// Authoring a model as XML and inspecting the analysis pipeline.
//
// Parses a hand-written block-diagram XML (with a nested subsystem), shows
// the flattened structure, the execution schedule, the I/O signature, and
// each generator's code-size/memory accounting — the "model parse" half of
// FRODO's pipeline in isolation.
//
//   ./examples/model_roundtrip
#include <cstdio>

#include "blocks/analysis.hpp"
#include "codegen/generator.hpp"
#include "graph/graph.hpp"
#include "model/flatten.hpp"
#include "slx/slx.hpp"

static const char* kModelXml = R"(<?xml version="1.0" encoding="UTF-8"?>
<Model Name="Mixer">
  <Block Name="left" Type="Inport"><P Name="Port">1</P><P Name="Dims">128</P></Block>
  <Block Name="right" Type="Inport"><P Name="Port">2</P><P Name="Dims">128</P></Block>
  <Block Name="balance" Type="Subsystem">
    <Model Name="balance">
      <Block Name="a" Type="Inport"><P Name="Port">1</P></Block>
      <Block Name="b" Type="Inport"><P Name="Port">2</P></Block>
      <Block Name="ga" Type="Gain"><P Name="Gain">0.7</P></Block>
      <Block Name="gb" Type="Gain"><P Name="Gain">0.3</P></Block>
      <Block Name="mix" Type="Sum"><P Name="Inputs">++</P></Block>
      <Block Name="y" Type="Outport"><P Name="Port">1</P></Block>
      <Line><Src Block="a" Port="1"/><Dst Block="ga" Port="1"/></Line>
      <Line><Src Block="b" Port="1"/><Dst Block="gb" Port="1"/></Line>
      <Line><Src Block="ga" Port="1"/><Dst Block="mix" Port="1"/></Line>
      <Line><Src Block="gb" Port="1"/><Dst Block="mix" Port="2"/></Line>
      <Line><Src Block="mix" Port="1"/><Dst Block="y" Port="1"/></Line>
    </Model>
  </Block>
  <Block Name="window" Type="Selector"><P Name="Start">32</P><P Name="End">95</P></Block>
  <Block Name="out" Type="Outport"><P Name="Port">1</P></Block>
  <Line><Src Block="left" Port="1"/><Dst Block="balance" Port="1"/></Line>
  <Line><Src Block="right" Port="1"/><Dst Block="balance" Port="2"/></Line>
  <Line><Src Block="balance" Port="1"/><Dst Block="window" Port="1"/></Line>
  <Line><Src Block="window" Port="1"/><Dst Block="out" Port="1"/></Line>
</Model>
)";

int main() {
  using namespace frodo;

  auto m = slx::from_xml(kModelXml);
  if (!m.is_ok()) {
    std::fprintf(stderr, "parse failed: %s\n", m.message().c_str());
    return 1;
  }
  std::printf("parsed '%s': %d top-level blocks, %d total\n",
              m.value().name().c_str(), m.value().block_count(),
              m.value().deep_block_count());

  auto flat = model::flatten(m.value());
  std::printf("\nflattened blocks:\n");
  for (int i = 0; i < flat.value().block_count(); ++i) {
    std::printf("  %-16s %s\n", flat.value().block(i).name().c_str(),
                flat.value().block(i).type().c_str());
  }

  auto graph = graph::DataflowGraph::build(flat.value());
  auto analysis = blocks::analyze(graph.value());
  if (!analysis.is_ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 analysis.message().c_str());
    return 1;
  }
  std::printf("\nexecution schedule:");
  for (model::BlockId id : analysis.value().order)
    std::printf(" %s", flat.value().block(id).name().c_str());
  std::printf("\n");

  auto sig = blocks::io_signature(analysis.value());
  std::printf("\nstep signature: %s_step(", m.value().name().c_str());
  for (const auto& p : sig.value().inputs)
    std::printf("const double %s[%lld], ", p.name.c_str(), p.shape.size());
  for (std::size_t i = 0; i < sig.value().outputs.size(); ++i)
    std::printf("double %s[%lld]%s", sig.value().outputs[i].name.c_str(),
                sig.value().outputs[i].shape.size(),
                i + 1 < sig.value().outputs.size() ? ", " : "");
  std::printf(")\n\n");

  std::printf("%-10s %12s %12s\n", "generator", "source LoC",
              "static KiB");
  for (const auto& gen : codegen::paper_generators()) {
    auto code = gen->generate(m.value());
    if (!code.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", gen->name().c_str(),
                   code.message().c_str());
      return 1;
    }
    std::printf("%-10s %12d %12.1f\n", gen->name().c_str(),
                code.value().source_lines,
                static_cast<double>(code.value().static_doubles) * 8 /
                    1024.0);
  }

  // Round-trip back out to XML to show serialization is loss-free.
  const std::string xml = slx::to_xml(m.value());
  auto again = slx::from_xml(xml);
  std::printf("\nXML round trip: %s\n",
              again.is_ok() && again.value().deep_block_count() ==
                                   m.value().deep_block_count()
                  ? "loss-free"
                  : "FAILED");
  return 0;
}
