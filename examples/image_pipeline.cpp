// 2-D redundancy elimination: the Figure 1 motif in two dimensions.
//
// A 64x64 sensor tile is sharpened by a full 5x5 Convolution2D; a Submatrix
// keeps only the 16x16 region of interest around the tracked feature, so
// Algorithm 1 shrinks the 2-D convolution from 68x68 = 4624 outputs to the
// ROI's row runs.  Prints the ranges, generates code with FRODO and the
// Simulink baseline, and times both.
//
//   ./examples/image_pipeline
#include <cstdio>

#include "blocks/analysis.hpp"
#include "codegen/generator.hpp"
#include "graph/graph.hpp"
#include "jit/jit.hpp"
#include "model/flatten.hpp"
#include "range/range_analysis.hpp"

int main() {
  using namespace frodo;

  model::Model m("ImagePipe");
  m.add_block("tile", "Inport")
      .set_param("Port", 1)
      .set_param("Dims", model::Value(std::vector<long long>{64, 64}));
  // 5x5 sharpening kernel.
  std::vector<double> kernel(25, -0.04);
  kernel[12] = 2.0;
  m.add_block("kernel", "Constant")
      .set_param("Value", model::Value(kernel))
      .set_param("Dims", model::Value(std::vector<long long>{5, 5}));
  m.add_block("sharpen", "Convolution2D");  // -> [68x68]
  m.add_block("roi", "Submatrix")
      .set_param("RowStart", 26)
      .set_param("RowEnd", 41)
      .set_param("ColStart", 26)
      .set_param("ColEnd", 41);  // -> [16x16]
  m.add_block("gain", "Gain").set_param("Gain", 0.5);
  m.add_block("feature", "Outport").set_param("Port", 1);
  m.connect("tile", 0, "sharpen", 0);
  m.connect("kernel", 0, "sharpen", 1);
  m.connect("sharpen", 0, "roi", 0);
  m.connect("roi", 0, "gain", 0);
  m.connect("gain", 0, "feature", 0);

  auto flat = model::flatten(m);
  auto graph = graph::DataflowGraph::build(flat.value());
  auto analysis = blocks::analyze(graph.value());
  auto ranges = range::determine_ranges(analysis.value());
  if (!ranges.is_ok()) {
    std::fprintf(stderr, "%s\n", ranges.message().c_str());
    return 1;
  }

  const model::BlockId conv = flat.value().find_block("sharpen");
  const auto& conv_range =
      ranges.value().out_ranges[static_cast<std::size_t>(conv)][0];
  std::printf("Convolution2D output: %d of %d elements demanded "
              "(%d row runs)\n",
              static_cast<int>(conv_range.count()), 68 * 68,
              conv_range.interval_count());
  std::printf("eliminated elements across the model: %lld\n\n",
              ranges.value().eliminated_elements(analysis.value()));

  const jit::CompilerProfile profile{"gcc-O3", "gcc", {"-O3"}, 4};
  const int reps = 5000;
  for (const char* name : {"simulink", "frodo"}) {
    auto gen = codegen::make_generator(name);
    auto code = gen.value()->generate(m);
    if (!code.is_ok()) {
      std::fprintf(stderr, "%s\n", code.message().c_str());
      return 1;
    }
    auto compiled =
        jit::compile_and_load(code.value(), profile, "/tmp/frodo_image");
    if (!compiled.is_ok()) {
      std::fprintf(stderr, "%s\n", compiled.message().c_str());
      return 1;
    }
    const auto inputs = jit::random_inputs(code.value(), 99);
    const double seconds = jit::time_steps(compiled.value(), inputs, reps);
    std::printf("%-10s %d steps: %.3fs (%d source lines)\n",
                gen.value()->name().c_str(), reps, seconds,
                code.value().source_lines);
  }
  return 0;
}
