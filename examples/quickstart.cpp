// Quickstart: the paper's running example, end to end.
//
// Builds the Figure 1 model (60-sample input -> full Convolution ->
// Selector [5,54]) programmatically, runs FRODO's model analysis and
// calculation-range determination (printing the Figure 5 walk), generates C
// with the FRODO generator, compiles it on the fly, and checks one step
// against the reference interpreter.
//
//   ./examples/quickstart
#include <cstdio>

#include "blocks/analysis.hpp"
#include "codegen/generator.hpp"
#include "graph/graph.hpp"
#include "interp/interpreter.hpp"
#include "jit/jit.hpp"
#include "model/flatten.hpp"
#include "range/range_analysis.hpp"

int main() {
  using namespace frodo;

  // 1. Build the model (the same thing slx::load() gives you from a file).
  model::Model m("Conv");
  m.add_block("In", "Inport").set_param("Port", 1).set_param("Dims", 60);
  m.add_block("Kernel", "Constant")
      .set_param("Value", model::Value(std::vector<double>{
                              0.0625, 0.25, 0.375, 0.25, 0.0625}));
  m.add_block("Convolution", "Convolution");
  m.add_block("Selector", "Selector")
      .set_param("Start", 5)
      .set_param("End", 54);
  m.add_block("Out", "Outport").set_param("Port", 1);
  m.connect("In", 0, "Convolution", 0);
  m.connect("Kernel", 0, "Convolution", 1);
  m.connect("Convolution", 0, "Selector", 0);
  m.connect("Selector", 0, "Out", 0);

  // 2. Model analysis: flatten, dataflow graph, shapes, schedule.
  auto flat = model::flatten(m);
  auto graph = graph::DataflowGraph::build(flat.value());
  auto analysis = blocks::analyze(graph.value());
  if (!analysis.is_ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 analysis.message().c_str());
    return 1;
  }

  // 3. Redundancy elimination: Algorithm 1.
  auto ranges = range::determine_ranges(analysis.value());
  std::printf("Calculation ranges (Figure 5):\n%s\n",
              ranges.value().to_string(analysis.value()).c_str());
  std::printf("Eliminated elements: %lld\n\n",
              ranges.value().eliminated_elements(analysis.value()));

  // 4. Concise code generation.
  codegen::FrodoGenerator frodo_gen;
  auto code = frodo_gen.generate(m);
  std::printf("---- generated %s.c (%d lines) ----\n%s\n",
              code.value().prefix.c_str(), code.value().source_lines,
              code.value().source.c_str());

  // 5. Compile + run one step, diffed against the interpreter.
  jit::CompilerProfile profile{"gcc-O2", "gcc", {"-O2"}, 4};
  auto compiled =
      jit::compile_and_load(code.value(), profile, "/tmp/frodo_quickstart");
  if (!compiled.is_ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.message().c_str());
    return 1;
  }
  compiled.value().init();

  auto inputs = jit::random_inputs(code.value(), /*seed=*/1);
  std::vector<const double*> in_ptrs{inputs[0].data()};
  std::vector<double> out(50);
  double* out_ptrs[] = {out.data()};
  compiled.value().step(in_ptrs.data(), out_ptrs);

  auto interp = interp::Interpreter::create(analysis.value());
  std::vector<std::vector<double>> want;
  if (!interp.value().step(inputs, &want).is_ok()) return 1;

  double max_err = 0;
  for (int i = 0; i < 50; ++i)
    max_err = std::max(max_err, std::abs(out[static_cast<std::size_t>(i)] -
                                         want[0][static_cast<std::size_t>(i)]));
  std::printf("generated code vs model simulation: max |err| = %g %s\n",
              max_err, max_err < 1e-12 ? "(OK)" : "(MISMATCH!)");
  return max_err < 1e-12 ? 0 : 1;
}
