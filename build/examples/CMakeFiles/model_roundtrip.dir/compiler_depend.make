# Empty compiler generated dependencies file for model_roundtrip.
# This may be replaced when dependencies are built.
