# Empty dependencies file for model_roundtrip.
# This may be replaced when dependencies are built.
