file(REMOVE_RECURSE
  "CMakeFiles/model_roundtrip.dir/model_roundtrip.cpp.o"
  "CMakeFiles/model_roundtrip.dir/model_roundtrip.cpp.o.d"
  "model_roundtrip"
  "model_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
