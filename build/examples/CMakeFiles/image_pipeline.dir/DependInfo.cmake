
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/image_pipeline.cpp" "examples/CMakeFiles/image_pipeline.dir/image_pipeline.cpp.o" "gcc" "examples/CMakeFiles/image_pipeline.dir/image_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchmodels/CMakeFiles/frodo_benchmodels.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/frodo_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/frodo_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/frodo_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/range/CMakeFiles/frodo_range.dir/DependInfo.cmake"
  "/root/repo/build/src/blocks/CMakeFiles/frodo_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/slx/CMakeFiles/frodo_slx.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/frodo_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/zip/CMakeFiles/frodo_zip.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/frodo_cgcore.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/frodo_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/frodo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/frodo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/frodo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
