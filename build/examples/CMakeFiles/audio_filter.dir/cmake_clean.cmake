file(REMOVE_RECURSE
  "CMakeFiles/audio_filter.dir/audio_filter.cpp.o"
  "CMakeFiles/audio_filter.dir/audio_filter.cpp.o.d"
  "audio_filter"
  "audio_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
