# Empty dependencies file for audio_filter.
# This may be replaced when dependencies are built.
