# Empty dependencies file for bench_generator_throughput.
# This may be replaced when dependencies are built.
