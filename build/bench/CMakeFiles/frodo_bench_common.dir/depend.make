# Empty dependencies file for frodo_bench_common.
# This may be replaced when dependencies are built.
