file(REMOVE_RECURSE
  "../lib/libfrodo_bench_common.a"
  "../lib/libfrodo_bench_common.pdb"
  "CMakeFiles/frodo_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/frodo_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
