file(REMOVE_RECURSE
  "../lib/libfrodo_bench_common.a"
)
