file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_x86.dir/bench_table2_x86.cpp.o"
  "CMakeFiles/bench_table2_x86.dir/bench_table2_x86.cpp.o.d"
  "bench_table2_x86"
  "bench_table2_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
