# Empty dependencies file for bench_table2_x86.
# This may be replaced when dependencies are built.
