file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_arm.dir/bench_fig6_arm.cpp.o"
  "CMakeFiles/bench_fig6_arm.dir/bench_fig6_arm.cpp.o.d"
  "bench_fig6_arm"
  "bench_fig6_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
