# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_xml[1]_include.cmake")
include("/root/repo/build/tests/test_zip[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_slx[1]_include.cmake")
include("/root/repo/build/tests/test_index_set[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_blocks[1]_include.cmake")
include("/root/repo/build/tests/test_range[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_benchmodels[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_pullback_property[1]_include.cmake")
include("/root/repo/build/tests/test_extended_blocks[1]_include.cmake")
include("/root/repo/build/tests/test_jit[1]_include.cmake")
include("/root/repo/build/tests/test_xml_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_benchmodel_ranges[1]_include.cmake")
include("/root/repo/build/tests/test_emitted_code_quality[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
