file(REMOVE_RECURSE
  "CMakeFiles/test_extended_blocks.dir/extended_blocks_test.cpp.o"
  "CMakeFiles/test_extended_blocks.dir/extended_blocks_test.cpp.o.d"
  "test_extended_blocks"
  "test_extended_blocks.pdb"
  "test_extended_blocks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
