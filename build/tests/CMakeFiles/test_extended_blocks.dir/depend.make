# Empty dependencies file for test_extended_blocks.
# This may be replaced when dependencies are built.
