# Empty compiler generated dependencies file for test_benchmodels.
# This may be replaced when dependencies are built.
