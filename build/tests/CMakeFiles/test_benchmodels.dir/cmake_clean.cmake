file(REMOVE_RECURSE
  "CMakeFiles/test_benchmodels.dir/benchmodels_test.cpp.o"
  "CMakeFiles/test_benchmodels.dir/benchmodels_test.cpp.o.d"
  "test_benchmodels"
  "test_benchmodels.pdb"
  "test_benchmodels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
