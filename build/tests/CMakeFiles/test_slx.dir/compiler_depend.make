# Empty compiler generated dependencies file for test_slx.
# This may be replaced when dependencies are built.
