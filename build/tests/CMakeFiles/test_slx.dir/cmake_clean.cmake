file(REMOVE_RECURSE
  "CMakeFiles/test_slx.dir/slx_test.cpp.o"
  "CMakeFiles/test_slx.dir/slx_test.cpp.o.d"
  "test_slx"
  "test_slx.pdb"
  "test_slx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
