file(REMOVE_RECURSE
  "CMakeFiles/test_benchmodel_ranges.dir/benchmodel_ranges_test.cpp.o"
  "CMakeFiles/test_benchmodel_ranges.dir/benchmodel_ranges_test.cpp.o.d"
  "test_benchmodel_ranges"
  "test_benchmodel_ranges.pdb"
  "test_benchmodel_ranges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchmodel_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
