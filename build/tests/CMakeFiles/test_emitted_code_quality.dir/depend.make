# Empty dependencies file for test_emitted_code_quality.
# This may be replaced when dependencies are built.
