file(REMOVE_RECURSE
  "CMakeFiles/test_emitted_code_quality.dir/emitted_code_quality_test.cpp.o"
  "CMakeFiles/test_emitted_code_quality.dir/emitted_code_quality_test.cpp.o.d"
  "test_emitted_code_quality"
  "test_emitted_code_quality.pdb"
  "test_emitted_code_quality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emitted_code_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
