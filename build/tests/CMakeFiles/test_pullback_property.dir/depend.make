# Empty dependencies file for test_pullback_property.
# This may be replaced when dependencies are built.
