file(REMOVE_RECURSE
  "CMakeFiles/test_pullback_property.dir/pullback_property_test.cpp.o"
  "CMakeFiles/test_pullback_property.dir/pullback_property_test.cpp.o.d"
  "test_pullback_property"
  "test_pullback_property.pdb"
  "test_pullback_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pullback_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
