file(REMOVE_RECURSE
  "CMakeFiles/test_index_set.dir/index_set_test.cpp.o"
  "CMakeFiles/test_index_set.dir/index_set_test.cpp.o.d"
  "test_index_set"
  "test_index_set.pdb"
  "test_index_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
