file(REMOVE_RECURSE
  "libfrodo_blocks.a"
)
