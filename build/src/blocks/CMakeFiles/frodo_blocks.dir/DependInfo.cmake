
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocks/analysis.cpp" "src/blocks/CMakeFiles/frodo_blocks.dir/analysis.cpp.o" "gcc" "src/blocks/CMakeFiles/frodo_blocks.dir/analysis.cpp.o.d"
  "/root/repo/src/blocks/blocks_conv2d.cpp" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_conv2d.cpp.o" "gcc" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_conv2d.cpp.o.d"
  "/root/repo/src/blocks/blocks_dsp.cpp" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_dsp.cpp.o" "gcc" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_dsp.cpp.o.d"
  "/root/repo/src/blocks/blocks_elementwise.cpp" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_elementwise.cpp.o" "gcc" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_elementwise.cpp.o.d"
  "/root/repo/src/blocks/blocks_extended.cpp" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_extended.cpp.o" "gcc" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_extended.cpp.o.d"
  "/root/repo/src/blocks/blocks_sources.cpp" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_sources.cpp.o" "gcc" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_sources.cpp.o.d"
  "/root/repo/src/blocks/blocks_state.cpp" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_state.cpp.o" "gcc" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_state.cpp.o.d"
  "/root/repo/src/blocks/blocks_truncation.cpp" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_truncation.cpp.o" "gcc" "src/blocks/CMakeFiles/frodo_blocks.dir/blocks_truncation.cpp.o.d"
  "/root/repo/src/blocks/emit_util.cpp" "src/blocks/CMakeFiles/frodo_blocks.dir/emit_util.cpp.o" "gcc" "src/blocks/CMakeFiles/frodo_blocks.dir/emit_util.cpp.o.d"
  "/root/repo/src/blocks/semantics.cpp" "src/blocks/CMakeFiles/frodo_blocks.dir/semantics.cpp.o" "gcc" "src/blocks/CMakeFiles/frodo_blocks.dir/semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/frodo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/frodo_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/frodo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/frodo_cgcore.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/frodo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
