# Empty compiler generated dependencies file for frodo_blocks.
# This may be replaced when dependencies are built.
