file(REMOVE_RECURSE
  "CMakeFiles/frodo_blocks.dir/analysis.cpp.o"
  "CMakeFiles/frodo_blocks.dir/analysis.cpp.o.d"
  "CMakeFiles/frodo_blocks.dir/blocks_conv2d.cpp.o"
  "CMakeFiles/frodo_blocks.dir/blocks_conv2d.cpp.o.d"
  "CMakeFiles/frodo_blocks.dir/blocks_dsp.cpp.o"
  "CMakeFiles/frodo_blocks.dir/blocks_dsp.cpp.o.d"
  "CMakeFiles/frodo_blocks.dir/blocks_elementwise.cpp.o"
  "CMakeFiles/frodo_blocks.dir/blocks_elementwise.cpp.o.d"
  "CMakeFiles/frodo_blocks.dir/blocks_extended.cpp.o"
  "CMakeFiles/frodo_blocks.dir/blocks_extended.cpp.o.d"
  "CMakeFiles/frodo_blocks.dir/blocks_sources.cpp.o"
  "CMakeFiles/frodo_blocks.dir/blocks_sources.cpp.o.d"
  "CMakeFiles/frodo_blocks.dir/blocks_state.cpp.o"
  "CMakeFiles/frodo_blocks.dir/blocks_state.cpp.o.d"
  "CMakeFiles/frodo_blocks.dir/blocks_truncation.cpp.o"
  "CMakeFiles/frodo_blocks.dir/blocks_truncation.cpp.o.d"
  "CMakeFiles/frodo_blocks.dir/emit_util.cpp.o"
  "CMakeFiles/frodo_blocks.dir/emit_util.cpp.o.d"
  "CMakeFiles/frodo_blocks.dir/semantics.cpp.o"
  "CMakeFiles/frodo_blocks.dir/semantics.cpp.o.d"
  "libfrodo_blocks.a"
  "libfrodo_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
