file(REMOVE_RECURSE
  "libfrodo_model.a"
)
