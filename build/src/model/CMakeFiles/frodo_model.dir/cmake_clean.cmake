file(REMOVE_RECURSE
  "CMakeFiles/frodo_model.dir/flatten.cpp.o"
  "CMakeFiles/frodo_model.dir/flatten.cpp.o.d"
  "CMakeFiles/frodo_model.dir/model.cpp.o"
  "CMakeFiles/frodo_model.dir/model.cpp.o.d"
  "CMakeFiles/frodo_model.dir/shape.cpp.o"
  "CMakeFiles/frodo_model.dir/shape.cpp.o.d"
  "CMakeFiles/frodo_model.dir/value.cpp.o"
  "CMakeFiles/frodo_model.dir/value.cpp.o.d"
  "libfrodo_model.a"
  "libfrodo_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
