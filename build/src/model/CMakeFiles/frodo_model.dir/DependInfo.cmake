
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/flatten.cpp" "src/model/CMakeFiles/frodo_model.dir/flatten.cpp.o" "gcc" "src/model/CMakeFiles/frodo_model.dir/flatten.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/model/CMakeFiles/frodo_model.dir/model.cpp.o" "gcc" "src/model/CMakeFiles/frodo_model.dir/model.cpp.o.d"
  "/root/repo/src/model/shape.cpp" "src/model/CMakeFiles/frodo_model.dir/shape.cpp.o" "gcc" "src/model/CMakeFiles/frodo_model.dir/shape.cpp.o.d"
  "/root/repo/src/model/value.cpp" "src/model/CMakeFiles/frodo_model.dir/value.cpp.o" "gcc" "src/model/CMakeFiles/frodo_model.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/frodo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
