# Empty dependencies file for frodo_model.
# This may be replaced when dependencies are built.
