# CMake generated Testfile for 
# Source directory: /root/repo/src/benchmodels
# Build directory: /root/repo/build/src/benchmodels
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
