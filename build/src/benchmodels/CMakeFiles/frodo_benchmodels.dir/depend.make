# Empty dependencies file for frodo_benchmodels.
# This may be replaced when dependencies are built.
