
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmodels/audio_process.cpp" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/audio_process.cpp.o" "gcc" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/audio_process.cpp.o.d"
  "/root/repo/src/benchmodels/back.cpp" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/back.cpp.o" "gcc" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/back.cpp.o.d"
  "/root/repo/src/benchmodels/benchmodels.cpp" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/benchmodels.cpp.o" "gcc" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/benchmodels.cpp.o.d"
  "/root/repo/src/benchmodels/decryption.cpp" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/decryption.cpp.o" "gcc" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/decryption.cpp.o.d"
  "/root/repo/src/benchmodels/highpass.cpp" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/highpass.cpp.o" "gcc" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/highpass.cpp.o.d"
  "/root/repo/src/benchmodels/ht.cpp" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/ht.cpp.o" "gcc" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/ht.cpp.o.d"
  "/root/repo/src/benchmodels/kalman.cpp" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/kalman.cpp.o" "gcc" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/kalman.cpp.o.d"
  "/root/repo/src/benchmodels/maintenance.cpp" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/maintenance.cpp.o" "gcc" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/maintenance.cpp.o.d"
  "/root/repo/src/benchmodels/manufacture.cpp" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/manufacture.cpp.o" "gcc" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/manufacture.cpp.o.d"
  "/root/repo/src/benchmodels/running_diff.cpp" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/running_diff.cpp.o" "gcc" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/running_diff.cpp.o.d"
  "/root/repo/src/benchmodels/simpson.cpp" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/simpson.cpp.o" "gcc" "src/benchmodels/CMakeFiles/frodo_benchmodels.dir/simpson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/frodo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/slx/CMakeFiles/frodo_slx.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/frodo_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/zip/CMakeFiles/frodo_zip.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/frodo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
