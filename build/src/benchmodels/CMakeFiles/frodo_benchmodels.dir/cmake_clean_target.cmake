file(REMOVE_RECURSE
  "libfrodo_benchmodels.a"
)
