file(REMOVE_RECURSE
  "CMakeFiles/frodo_benchmodels.dir/audio_process.cpp.o"
  "CMakeFiles/frodo_benchmodels.dir/audio_process.cpp.o.d"
  "CMakeFiles/frodo_benchmodels.dir/back.cpp.o"
  "CMakeFiles/frodo_benchmodels.dir/back.cpp.o.d"
  "CMakeFiles/frodo_benchmodels.dir/benchmodels.cpp.o"
  "CMakeFiles/frodo_benchmodels.dir/benchmodels.cpp.o.d"
  "CMakeFiles/frodo_benchmodels.dir/decryption.cpp.o"
  "CMakeFiles/frodo_benchmodels.dir/decryption.cpp.o.d"
  "CMakeFiles/frodo_benchmodels.dir/highpass.cpp.o"
  "CMakeFiles/frodo_benchmodels.dir/highpass.cpp.o.d"
  "CMakeFiles/frodo_benchmodels.dir/ht.cpp.o"
  "CMakeFiles/frodo_benchmodels.dir/ht.cpp.o.d"
  "CMakeFiles/frodo_benchmodels.dir/kalman.cpp.o"
  "CMakeFiles/frodo_benchmodels.dir/kalman.cpp.o.d"
  "CMakeFiles/frodo_benchmodels.dir/maintenance.cpp.o"
  "CMakeFiles/frodo_benchmodels.dir/maintenance.cpp.o.d"
  "CMakeFiles/frodo_benchmodels.dir/manufacture.cpp.o"
  "CMakeFiles/frodo_benchmodels.dir/manufacture.cpp.o.d"
  "CMakeFiles/frodo_benchmodels.dir/running_diff.cpp.o"
  "CMakeFiles/frodo_benchmodels.dir/running_diff.cpp.o.d"
  "CMakeFiles/frodo_benchmodels.dir/simpson.cpp.o"
  "CMakeFiles/frodo_benchmodels.dir/simpson.cpp.o.d"
  "libfrodo_benchmodels.a"
  "libfrodo_benchmodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_benchmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
