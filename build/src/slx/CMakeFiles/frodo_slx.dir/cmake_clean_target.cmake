file(REMOVE_RECURSE
  "libfrodo_slx.a"
)
