file(REMOVE_RECURSE
  "CMakeFiles/frodo_slx.dir/slx.cpp.o"
  "CMakeFiles/frodo_slx.dir/slx.cpp.o.d"
  "libfrodo_slx.a"
  "libfrodo_slx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_slx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
