# Empty dependencies file for frodo_slx.
# This may be replaced when dependencies are built.
