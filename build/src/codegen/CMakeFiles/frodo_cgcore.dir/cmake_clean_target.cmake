file(REMOVE_RECURSE
  "libfrodo_cgcore.a"
)
