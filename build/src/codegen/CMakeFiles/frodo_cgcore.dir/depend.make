# Empty dependencies file for frodo_cgcore.
# This may be replaced when dependencies are built.
