file(REMOVE_RECURSE
  "CMakeFiles/frodo_cgcore.dir/cwriter.cpp.o"
  "CMakeFiles/frodo_cgcore.dir/cwriter.cpp.o.d"
  "CMakeFiles/frodo_cgcore.dir/emit_context.cpp.o"
  "CMakeFiles/frodo_cgcore.dir/emit_context.cpp.o.d"
  "CMakeFiles/frodo_cgcore.dir/snippet.cpp.o"
  "CMakeFiles/frodo_cgcore.dir/snippet.cpp.o.d"
  "libfrodo_cgcore.a"
  "libfrodo_cgcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_cgcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
