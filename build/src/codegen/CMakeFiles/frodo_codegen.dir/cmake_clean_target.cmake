file(REMOVE_RECURSE
  "libfrodo_codegen.a"
)
