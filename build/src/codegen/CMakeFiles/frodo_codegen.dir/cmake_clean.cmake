file(REMOVE_RECURSE
  "CMakeFiles/frodo_codegen.dir/generator.cpp.o"
  "CMakeFiles/frodo_codegen.dir/generator.cpp.o.d"
  "libfrodo_codegen.a"
  "libfrodo_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
