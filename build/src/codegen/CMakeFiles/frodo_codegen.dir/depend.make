# Empty dependencies file for frodo_codegen.
# This may be replaced when dependencies are built.
