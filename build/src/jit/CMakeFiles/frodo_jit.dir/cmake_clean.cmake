file(REMOVE_RECURSE
  "CMakeFiles/frodo_jit.dir/jit.cpp.o"
  "CMakeFiles/frodo_jit.dir/jit.cpp.o.d"
  "libfrodo_jit.a"
  "libfrodo_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
