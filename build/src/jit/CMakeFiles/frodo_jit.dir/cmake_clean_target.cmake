file(REMOVE_RECURSE
  "libfrodo_jit.a"
)
