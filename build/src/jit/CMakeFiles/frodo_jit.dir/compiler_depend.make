# Empty compiler generated dependencies file for frodo_jit.
# This may be replaced when dependencies are built.
