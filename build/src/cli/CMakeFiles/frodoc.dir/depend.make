# Empty dependencies file for frodoc.
# This may be replaced when dependencies are built.
