file(REMOVE_RECURSE
  "CMakeFiles/frodoc.dir/frodoc.cpp.o"
  "CMakeFiles/frodoc.dir/frodoc.cpp.o.d"
  "frodoc"
  "frodoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
