file(REMOVE_RECURSE
  "libfrodo_xml.a"
)
