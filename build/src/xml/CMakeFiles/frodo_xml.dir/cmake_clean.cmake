file(REMOVE_RECURSE
  "CMakeFiles/frodo_xml.dir/xml.cpp.o"
  "CMakeFiles/frodo_xml.dir/xml.cpp.o.d"
  "libfrodo_xml.a"
  "libfrodo_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
