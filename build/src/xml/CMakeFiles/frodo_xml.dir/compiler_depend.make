# Empty compiler generated dependencies file for frodo_xml.
# This may be replaced when dependencies are built.
