file(REMOVE_RECURSE
  "libfrodo_graph.a"
)
