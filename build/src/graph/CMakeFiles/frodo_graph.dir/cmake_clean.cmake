file(REMOVE_RECURSE
  "CMakeFiles/frodo_graph.dir/graph.cpp.o"
  "CMakeFiles/frodo_graph.dir/graph.cpp.o.d"
  "libfrodo_graph.a"
  "libfrodo_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
