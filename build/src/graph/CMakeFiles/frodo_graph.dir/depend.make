# Empty dependencies file for frodo_graph.
# This may be replaced when dependencies are built.
