file(REMOVE_RECURSE
  "libfrodo_range.a"
)
