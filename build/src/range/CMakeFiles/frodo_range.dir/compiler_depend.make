# Empty compiler generated dependencies file for frodo_range.
# This may be replaced when dependencies are built.
