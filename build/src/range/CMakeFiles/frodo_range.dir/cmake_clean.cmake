file(REMOVE_RECURSE
  "CMakeFiles/frodo_range.dir/range_analysis.cpp.o"
  "CMakeFiles/frodo_range.dir/range_analysis.cpp.o.d"
  "libfrodo_range.a"
  "libfrodo_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
