# Empty compiler generated dependencies file for frodo_mapping.
# This may be replaced when dependencies are built.
