file(REMOVE_RECURSE
  "CMakeFiles/frodo_mapping.dir/index_set.cpp.o"
  "CMakeFiles/frodo_mapping.dir/index_set.cpp.o.d"
  "libfrodo_mapping.a"
  "libfrodo_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
