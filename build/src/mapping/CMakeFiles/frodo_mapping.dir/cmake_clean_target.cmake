file(REMOVE_RECURSE
  "libfrodo_mapping.a"
)
