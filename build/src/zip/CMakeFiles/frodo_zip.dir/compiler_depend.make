# Empty compiler generated dependencies file for frodo_zip.
# This may be replaced when dependencies are built.
