file(REMOVE_RECURSE
  "libfrodo_zip.a"
)
