file(REMOVE_RECURSE
  "CMakeFiles/frodo_zip.dir/zip.cpp.o"
  "CMakeFiles/frodo_zip.dir/zip.cpp.o.d"
  "libfrodo_zip.a"
  "libfrodo_zip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_zip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
