# Empty dependencies file for frodo_interp.
# This may be replaced when dependencies are built.
