file(REMOVE_RECURSE
  "CMakeFiles/frodo_interp.dir/interpreter.cpp.o"
  "CMakeFiles/frodo_interp.dir/interpreter.cpp.o.d"
  "libfrodo_interp.a"
  "libfrodo_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
