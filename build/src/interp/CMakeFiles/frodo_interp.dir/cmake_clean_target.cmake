file(REMOVE_RECURSE
  "libfrodo_interp.a"
)
