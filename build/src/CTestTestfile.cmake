# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("xml")
subdirs("zip")
subdirs("model")
subdirs("slx")
subdirs("mapping")
subdirs("graph")
subdirs("blocks")
subdirs("range")
subdirs("interp")
subdirs("codegen")
subdirs("jit")
subdirs("benchmodels")
subdirs("cli")
