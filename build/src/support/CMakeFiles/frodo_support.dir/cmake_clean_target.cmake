file(REMOVE_RECURSE
  "libfrodo_support.a"
)
