file(REMOVE_RECURSE
  "CMakeFiles/frodo_support.dir/strings.cpp.o"
  "CMakeFiles/frodo_support.dir/strings.cpp.o.d"
  "libfrodo_support.a"
  "libfrodo_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frodo_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
