# Empty dependencies file for frodo_support.
# This may be replaced when dependencies are built.
